//! The always-on, sharded [`MetricsRegistry`]: counters, gauges, and
//! log₂ histograms with sliding-window aggregation, cheap enough to leave
//! attached to a production `Session` fleet.
//!
//! The registry implements [`Recorder`], so every existing `cache_*` /
//! `budget_*` / `lint_*` instrumentation point feeds it unchanged:
//! [`Recorder::add`] lands in a [`WindowedCounter`], [`Recorder::observe`]
//! in a [`WindowedHistogram`], and spans are timed into per-span-name
//! duration histograms (attach a [`crate::SamplingRecorder`] in front to
//! keep span timing at a bounded sampling rate).
//!
//! ## Storage
//!
//! Metric names are `&'static str`s from [`crate::names`]; the hot path
//! hashes the name's *content* (names are short, so this is a handful of
//! multiplies) and linear-probes a fixed table of `OnceLock<Arc<_>>`
//! slots — lock-free reads, no allocation after first touch. Probe
//! comparison is pointer-first with a content fallback: rustc may place
//! the same literal at different addresses across codegen units, and
//! keying by address would split one logical metric across cells (found
//! by the concurrency model checker in release builds). A full table
//! (hundreds of distinct names) falls back to a mutexed overflow list
//! rather than dropping data.
//!
//! ## Time
//!
//! The registry quantizes its monotonic clock into fixed-length epochs.
//! Writers only *load* the current epoch; someone (the exporter loop, a
//! dashboard, a test) calls [`MetricsRegistry::tick`] to advance it.
//! [`MetricsRegistry::advance_epochs`] advances the counter by hand for
//! deterministic rollover tests — `tick` is monotone against both.

use ssd_base::sync::{Arc, AtomicU64, Mutex, OnceLock, Ordering};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::recorder::{Recorder, SpanId};
use crate::tracer::Histogram;
use crate::window::{clamp_window, WindowedCounter, WindowedHistogram, RING};

/// Slots in an indexed (per-shard) gauge, matching the cache shard count.
pub const GAUGE_SLOTS: usize = 16;

/// Fixed probe-table size (power of two).
const TABLE: usize = 512;
/// Probe length before falling back to the overflow list.
const PROBE: usize = 32;

/// Recovers a poisoned mutex guard: metrics must never compound a panic.
fn lock<T>(m: &Mutex<T>) -> ssd_base::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Hashes a name's *content* (FNV-1a) into a table index. The hash must
/// not involve the string's address: rustc may duplicate an identical
/// literal (or a `const` name used from two codegen units) at distinct
/// addresses, and an address-based hash would then file the same logical
/// metric under two cells, silently splitting its counts — a bug the
/// concurrency model checker caught in release builds.
fn name_hash(name: &'static str) -> usize {
    let mut x = 0xcbf29ce484222325u64;
    for &b in name.as_bytes() {
        x ^= u64::from(b);
        x = x.wrapping_mul(0x100000001b3);
    }
    x as usize
}

/// Whether a cell's stored name matches a probe name: pointer fast path
/// (the common case — one literal, one address), content comparison as
/// the correctness backstop for duplicated literals.
fn name_eq(stored: &'static str, probe: &'static str) -> bool {
    std::ptr::eq(stored.as_ptr(), probe.as_ptr()) || stored == probe
}

/// A named metric cell.
struct Cell<T> {
    name: &'static str,
    body: T,
}

/// Lock-free-read probe table of metric cells keyed by `&'static str`.
struct Table<T> {
    slots: Box<[OnceLock<Arc<Cell<T>>>]>,
    overflow: Mutex<Vec<Arc<Cell<T>>>>,
}

impl<T> Table<T> {
    fn new() -> Table<T> {
        Table {
            slots: (0..TABLE).map(|_| OnceLock::new()).collect(),
            overflow: Mutex::new(Vec::new()),
        }
    }

    /// The cell for `name`, created with `init` on first touch. The fast
    /// path is one content hash plus a pointer compare per probe step.
    fn get_with(&self, name: &'static str, init: impl Fn() -> T) -> Arc<Cell<T>> {
        let h = name_hash(name);
        for i in 0..PROBE {
            let slot = &self.slots[(h + i) & (TABLE - 1)];
            if let Some(cell) = slot.get() {
                if name_eq(cell.name, name) {
                    return cell.clone();
                }
                continue;
            }
            let fresh = Arc::new(Cell { name, body: init() });
            if slot.set(fresh.clone()).is_ok() {
                return fresh;
            }
            // Lost the race for this slot; re-check what landed there.
            if let Some(cell) = slot.get() {
                if name_eq(cell.name, name) {
                    return cell.clone();
                }
            }
        }
        let mut ov = lock(&self.overflow);
        if let Some(cell) = ov.iter().find(|c| name_eq(c.name, name)) {
            return cell.clone();
        }
        let fresh = Arc::new(Cell { name, body: init() });
        ov.push(fresh.clone());
        fresh
    }

    /// Runs `f` against the cell for `name` without touching its
    /// refcount: a probe hit passes the slot's cell straight through,
    /// so the warm path does zero atomic RMWs beyond the metric update
    /// itself. Misses fall back to the allocating [`Table::get_with`].
    fn with<R>(
        &self,
        name: &'static str,
        init: impl Fn() -> T,
        f: impl FnOnce(&Cell<T>) -> R,
    ) -> R {
        let h = name_hash(name);
        for i in 0..PROBE {
            let slot = &self.slots[(h + i) & (TABLE - 1)];
            match slot.get() {
                Some(cell) if name_eq(cell.name, name) => return f(cell),
                Some(_) => continue,
                None => break,
            }
        }
        f(&self.get_with(name, init))
    }

    /// Visits every populated cell (table slots, then overflow).
    fn for_each(&self, mut f: impl FnMut(&Cell<T>)) {
        for slot in self.slots.iter() {
            if let Some(cell) = slot.get() {
                f(cell);
            }
        }
        for cell in lock(&self.overflow).iter() {
            f(cell);
        }
    }
}

/// An f64 gauge stored as atomic bits.
struct Gauge(AtomicU64);

impl Gauge {
    fn new() -> Gauge {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A gauge cell: one scalar plus an indexed vector (per-shard values),
/// with presence bitmasks so unset members stay out of exports.
struct GaugeCell {
    scalar: Gauge,
    scalar_set: AtomicU64,
    slots: [Gauge; GAUGE_SLOTS],
    slot_mask: AtomicU64,
}

impl GaugeCell {
    fn new() -> GaugeCell {
        GaugeCell {
            scalar: Gauge::new(),
            scalar_set: AtomicU64::new(0),
            slots: std::array::from_fn(|_| Gauge::new()),
            slot_mask: AtomicU64::new(0),
        }
    }
}

/// Per-thread stack of spans opened directly on a registry, for timing
/// span durations without a global lock. Entries are tagged with the
/// owning registry's id so two registries on one thread stay separate.
struct OpenSpan {
    registry: u64,
    name: &'static str,
    start: Instant,
}

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<OpenSpan>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Distinguishes registries sharing a thread's span stack.
static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

/// The always-on metrics sink. See the [module docs](self) for the
/// storage and windowing model; construct with [`MetricsRegistry::new`]
/// (1-second epochs, full [`RING`]-epoch window) or
/// [`MetricsRegistry::with_epoch`] and attach to a session directly or
/// behind a [`crate::SamplingRecorder`].
pub struct MetricsRegistry {
    id: u64,
    origin: Instant,
    epoch_len: Duration,
    window: usize,
    cur_epoch: AtomicU64,
    counters: Table<WindowedCounter>,
    hists: Table<WindowedHistogram>,
    gauges: Table<GaugeCell>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A registry with 1-second epochs and a [`RING`]-epoch window.
    pub fn new() -> MetricsRegistry {
        Self::with_epoch(Duration::from_secs(1), RING)
    }

    /// A registry with a custom epoch length and aggregation window (in
    /// epochs, clamped to `1..=RING`).
    pub fn with_epoch(epoch_len: Duration, window: usize) -> MetricsRegistry {
        MetricsRegistry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            origin: Instant::now(),
            epoch_len: epoch_len.max(Duration::from_millis(1)),
            window: clamp_window(window),
            cur_epoch: AtomicU64::new(0),
            counters: Table::new(),
            hists: Table::new(),
            gauges: Table::new(),
        }
    }

    /// The current epoch number (as last ticked or advanced).
    pub fn epoch(&self) -> u64 {
        self.cur_epoch.load(Ordering::Relaxed)
    }

    /// The configured epoch length.
    pub fn epoch_len(&self) -> Duration {
        self.epoch_len
    }

    /// The configured aggregation window, in epochs.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Advances the epoch from the wall clock (monotone: never moves
    /// backwards past a manual [`MetricsRegistry::advance_epochs`]).
    /// Writers never tick — call this from the exporter/dashboard loop.
    pub fn tick(&self) -> u64 {
        let elapsed = self.origin.elapsed().as_nanos();
        let computed =
            (elapsed / self.epoch_len.as_nanos().max(1)).min(u128::from(u64::MAX)) as u64;
        self.cur_epoch.fetch_max(computed, Ordering::Relaxed);
        self.epoch()
    }

    /// Advances the epoch counter by `n` directly — deterministic epoch
    /// rollover for tests (pair with a long epoch so `tick` stays below).
    pub fn advance_epochs(&self, n: u64) -> u64 {
        self.cur_epoch.fetch_add(n, Ordering::Relaxed);
        self.epoch()
    }

    /// Sets the scalar gauge `name`.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        self.gauges.with(name, GaugeCell::new, |cell| {
            cell.body.scalar.set(value);
            // Release, paired with the exporter's Acquire load of the
            // presence flag: a snapshot that sees the gauge as "set"
            // must also see (at least) the value stored above, so an
            // export can never surface the zero-initialized placeholder
            // as a real reading. The f64 bits themselves stay Relaxed —
            // the flag carries the ordering once, not every store.
            cell.body.scalar_set.store(1, Ordering::Release);
        });
    }

    /// Sets member `index` of the indexed gauge `name` (per-shard
    /// values). Indexes at or past [`GAUGE_SLOTS`] are ignored.
    pub fn set_gauge_slot(&self, name: &'static str, index: usize, value: f64) {
        if index >= GAUGE_SLOTS {
            return;
        }
        self.gauges.with(name, GaugeCell::new, |cell| {
            cell.body.slots[index].set(value);
            // Same Release/Acquire pairing (and rationale) as the
            // scalar's presence flag in `set_gauge`, one bit per slot.
            cell.body.slot_mask.fetch_or(1 << index, Ordering::Release);
        });
    }

    /// Exact lifetime total of counter `name` (0 if never bumped).
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.counters
            .with(name, WindowedCounter::new, |c| c.body.total())
    }

    /// Windowed total of counter `name` over the configured window.
    pub fn counter_window(&self, name: &'static str) -> u64 {
        let epoch = self.epoch();
        self.counters.with(name, WindowedCounter::new, |c| {
            c.body.window_total(epoch, self.window)
        })
    }

    /// Scalar gauge value, if set.
    pub fn gauge(&self, name: &'static str) -> Option<f64> {
        self.gauges.with(name, GaugeCell::new, |cell| {
            if cell.body.scalar_set.load(Ordering::Acquire) != 0 {
                Some(cell.body.scalar.get())
            } else {
                None
            }
        })
    }

    /// A point-in-time [`MetricsSnapshot`]: ticks the clock, then merges
    /// all cells by *content* name, sorted for stable export order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let epoch = self.tick();
        let window = self.window;

        let mut counters: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        self.counters.for_each(|cell| {
            let e = counters.entry(cell.name.to_owned()).or_insert((0, 0));
            e.0 = e.0.saturating_add(cell.body.total());
            e.1 = e.1.saturating_add(cell.body.window_total(epoch, window));
        });

        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        self.hists.for_each(|cell| {
            let merged = cell.body.merged(epoch, window);
            let e = hists.entry(cell.name.to_owned()).or_default();
            e.count += merged.count;
            e.sum = e.sum.saturating_add(merged.sum);
            for (o, b) in e.buckets.iter_mut().zip(&merged.buckets) {
                *o += b;
            }
        });

        type GaugeAcc = (Option<f64>, Vec<(usize, f64)>);
        let mut gauges: BTreeMap<String, GaugeAcc> = BTreeMap::new();
        self.gauges.for_each(|cell| {
            let e = gauges
                .entry(cell.name.to_owned())
                .or_insert((None, Vec::new()));
            if cell.body.scalar_set.load(Ordering::Acquire) != 0 {
                e.0 = Some(cell.body.scalar.get());
            }
            let mask = cell.body.slot_mask.load(Ordering::Acquire);
            for (i, g) in cell.body.slots.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    e.1.push((i, g.get()));
                }
            }
        });

        let uptime = self.origin.elapsed();
        // Rates divide by the *covered* span: the window, unless the
        // process is younger than that.
        let covered = self
            .epoch_len
            .saturating_mul(window as u32)
            .min(uptime.max(self.epoch_len))
            .as_secs_f64()
            .max(1e-9);

        MetricsSnapshot {
            epoch,
            epoch_len: self.epoch_len,
            window,
            uptime,
            counters: counters
                .into_iter()
                .map(|(name, (total, win))| CounterSnapshot {
                    name,
                    total,
                    window: win,
                    rate: win as f64 / covered,
                })
                .collect(),
            gauges: gauges
                .into_iter()
                .map(|(name, (value, mut slots))| {
                    slots.sort_unstable_by_key(|&(i, _)| i);
                    GaugeSnapshot { name, value, slots }
                })
                .collect(),
            histograms: hists
                .into_iter()
                .map(|(name, window)| HistogramSnapshot { name, window })
                .collect(),
        }
    }
}

impl Recorder for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str) -> SpanId {
        SPAN_STACK.with_borrow_mut(|stack| {
            let idx = stack.len();
            stack.push(OpenSpan {
                registry: self.id,
                name,
                start: Instant::now(),
            });
            SpanId::from_index(idx)
        })
    }

    fn span_end(&self, id: SpanId) {
        let Some(idx) = id.index() else { return };
        SPAN_STACK.with_borrow_mut(|stack| {
            if idx >= stack.len() {
                return; // double-end or cross-thread id — ignore
            }
            // Closing an outer span implicitly closes leaked inner ones.
            while stack.len() > idx {
                if let Some(open) = stack.pop() {
                    if open.registry != self.id {
                        continue; // another registry's leak — not ours to time
                    }
                    let dur = open.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    let epoch = self.epoch();
                    self.hists.with(open.name, WindowedHistogram::new, |c| {
                        c.body.record(dur, epoch)
                    });
                }
            }
        });
    }

    fn add(&self, name: &'static str, delta: u64) {
        let epoch = self.epoch();
        self.counters
            .with(name, WindowedCounter::new, |c| c.body.add(delta, epoch));
    }

    fn observe(&self, name: &'static str, value: u64) {
        let epoch = self.epoch();
        self.hists.with(name, WindowedHistogram::new, |c| {
            c.body.record(value, epoch)
        });
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct CounterSnapshot {
    /// Metric name (from [`crate::names::counter`]).
    pub name: String,
    /// Exact lifetime total.
    pub total: u64,
    /// Total over the snapshot's aggregation window.
    pub window: u64,
    /// Windowed total divided by the covered window seconds.
    pub rate: f64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct GaugeSnapshot {
    /// Metric name (from [`crate::names::gauge`]).
    pub name: String,
    /// The scalar value, if ever set.
    pub value: Option<f64>,
    /// Set members of the indexed (per-shard) vector, sorted by index.
    pub slots: Vec<(usize, f64)>,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Metric name (a span name or a [`crate::names::counter`]-style
    /// observation name).
    pub name: String,
    /// Buckets merged over the aggregation window.
    pub window: Histogram,
}

/// A point-in-time export of a [`MetricsRegistry`], merged by metric
/// name and sorted, ready for [`crate::expose`].
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Epoch the snapshot was taken at.
    pub epoch: u64,
    /// The registry's epoch length.
    pub epoch_len: Duration,
    /// Aggregation window, in epochs.
    pub window: usize,
    /// Time since the registry was created.
    pub uptime: Duration,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter lifetime total by name (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.total)
            .unwrap_or(0)
    }

    /// Scalar gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .and_then(|g| g.value)
    }

    /// Windowed histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A registry whose wall clock never advances an epoch on its own.
    fn frozen() -> MetricsRegistry {
        MetricsRegistry::with_epoch(Duration::from_secs(3600), 4)
    }

    #[test]
    fn counters_window_across_epochs() {
        let reg = frozen();
        reg.add("c", 5);
        reg.advance_epochs(1);
        reg.add("c", 7);
        assert_eq!(reg.counter_total("c"), 12);
        assert_eq!(reg.counter_window("c"), 12);
        reg.advance_epochs(10);
        assert_eq!(reg.counter_window("c"), 0, "window expired");
        assert_eq!(reg.counter_total("c"), 12);
    }

    #[test]
    fn distinct_statics_same_content_merge_in_snapshot() {
        // Two statics with equal content but (likely) distinct addresses.
        static A: &str = "dup_metric";
        let b: &'static str = String::leak(String::from("dup_metric"));
        let reg = frozen();
        reg.add(A, 1);
        reg.add(b, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("dup_metric"), 3);
        assert_eq!(
            snap.counters
                .iter()
                .filter(|c| c.name == "dup_metric")
                .count(),
            1
        );
    }

    #[test]
    fn gauges_scalar_and_indexed() {
        let reg = frozen();
        reg.set_gauge("g", 1.5);
        reg.set_gauge_slot("occ", 0, 10.0);
        reg.set_gauge_slot("occ", 3, 30.0);
        reg.set_gauge_slot("occ", GAUGE_SLOTS, 99.0); // ignored
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("g"), Some(1.5));
        let occ = snap
            .gauges
            .iter()
            .find(|g| g.name == "occ")
            .map(|g| g.slots.clone());
        assert_eq!(occ, Some(vec![(0, 10.0), (3, 30.0)]));
        assert_eq!(reg.gauge("unset"), None);
    }

    #[test]
    fn spans_time_into_histograms() {
        let reg = frozen();
        let a = reg.span_start("outer");
        let b = reg.span_start("inner");
        reg.span_end(b);
        reg.span_end(a);
        let snap = reg.snapshot();
        let outer = snap.histogram("outer").cloned();
        assert_eq!(outer.map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("inner").map(|h| h.count), Some(1));
    }

    #[test]
    fn outer_span_end_closes_leaked_inner() {
        let reg = frozen();
        let a = reg.span_start("outer");
        let _leak = reg.span_start("inner");
        reg.span_end(a);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("inner").map(|h| h.count), Some(1));
        SPAN_STACK.with_borrow(|s| assert!(s.is_empty()));
    }

    #[test]
    fn observations_land_in_windowed_histograms() {
        let reg = frozen();
        reg.observe("sizes", 100);
        reg.advance_epochs(1);
        reg.observe("sizes", 200);
        let snap = reg.snapshot();
        let h = snap.histogram("sizes").cloned();
        assert_eq!(h.as_ref().map(|h| h.count), Some(2));
        reg.advance_epochs(10);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("sizes").map(|h| h.count), Some(0));
    }

    #[test]
    fn snapshot_rates_use_window_coverage() {
        let reg = MetricsRegistry::with_epoch(Duration::from_millis(100), 4);
        reg.add("r", 40);
        let snap = reg.snapshot();
        let c = snap.counters.iter().find(|c| c.name == "r");
        assert!(c.is_some_and(|c| c.rate > 0.0));
    }

    #[test]
    fn overflow_table_still_counts() {
        let reg = frozen();
        // Far more distinct names than the probe table can be expected
        // to hold without collisions; leak them to get 'static strs.
        let names: Vec<&'static str> = (0..2 * TABLE)
            .map(|i| -> &'static str { String::leak(format!("m{i}")) })
            .collect();
        for (i, n) in names.iter().enumerate() {
            reg.add(n, i as u64 + 1);
        }
        for (i, n) in names.iter().enumerate() {
            assert_eq!(reg.counter_total(n), i as u64 + 1, "metric {n}");
        }
    }

    #[test]
    fn tick_is_monotone_with_manual_advance() {
        let reg = frozen();
        reg.advance_epochs(5);
        assert_eq!(reg.tick(), 5, "wall clock far below manual epoch");
    }
}
