//! Probabilistic span sampling with trace-context propagation, so span
//! *timing* can stay enabled in production at a bounded overhead while
//! counters and observations stay exact.
//!
//! [`SamplingRecorder`] wraps any inner [`Recorder`]:
//!
//! * counters ([`Recorder::add`]) and observations ([`Recorder::observe`])
//!   are **always** forwarded — metrics never sample;
//! * spans are forwarded only for **sampled traces**. A trace is the
//!   dynamic extent of a top-level span on a thread; the decision is a
//!   deterministic hash of the trace id against the configured rate, so
//!   every span of one request shares one coherent decision;
//! * a trace that trips a budget (an [`names::counter::BUDGET_EXHAUSTED`]
//!   bump) is **promoted** mid-flight: its still-open ancestry is
//!   replayed into the inner recorder and the rest of the trace records
//!   normally, so the interesting tail is never lost to sampling.
//!
//! Unsampled spans cost a thread-local stack push/pop — no timestamp, no
//! lock, no allocation after warm-up — which is what keeps the warm
//! `dispatch::satisfiable` path within the ≤5% overhead budget.
//!
//! ## Request ids
//!
//! The `*_in` pipeline entry points open an ambient [`RequestScope`];
//! nested engine calls (inference probing satisfiability, lint running
//! the dispatcher) then share the outermost request's trace id instead of
//! deciding per call. Callers with their own correlation ids can pin one
//! with [`begin_request_with_id`].

use ssd_base::sync::{Arc, AtomicU64, Ordering};
use std::cell::{Cell, RefCell};

use crate::names;
use crate::recorder::{Recorder, SpanId};

/// The default sampling rate: 1 trace in 100.
pub const DEFAULT_SAMPLE_RATE: f64 = 0.01;

/// splitmix64 finalizer — decorrelates sequential ids before the
/// sampling threshold compare.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Seeds per-thread id generators; never zero.
static NEXT_THREAD_SEED: AtomicU64 = AtomicU64::new(0x1234_5678_9abc_def1);

thread_local! {
    /// xorshift64* state for locally generated trace ids.
    static TRACE_RNG: Cell<u64> = Cell::new(mix(
        NEXT_THREAD_SEED.fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed),
    ) | 1);

    /// Ambient request context: `(id, nesting depth)`; depth 0 = none.
    static REQUEST: Cell<(u64, u32)> = const { Cell::new((0, 0)) };

    /// The sampler's per-thread trace state: the open-span stack and the
    /// current trace's sampling decision.
    static TRACE: RefCell<TraceState> = const {
        RefCell::new(TraceState {
            open: Vec::new(),
            sampled: false,
            trace_id: 0,
        })
    };
}

/// Generates a fresh trace id on this thread (xorshift64*).
fn gen_id() -> u64 {
    TRACE_RNG.with(|c| {
        let mut x = c.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        x.wrapping_mul(0x2545f491_4f6cdd1d)
    })
}

/// An ambient request scope: while alive, samplers on this thread tag
/// every trace with the scope's id (outermost scope wins). Created by
/// [`begin_request`] / [`begin_request_with_id`]; ends on drop.
pub struct RequestScope {
    outermost: bool,
}

/// Opens a request scope with a freshly generated id, or joins the
/// already-open outermost scope.
pub fn begin_request() -> RequestScope {
    begin_scope(None)
}

/// Opens a request scope pinned to `id` (a caller-provided correlation
/// id), or joins the already-open outermost scope — an outer request's
/// id always wins over a nested one.
pub fn begin_request_with_id(id: u64) -> RequestScope {
    begin_scope(Some(id))
}

fn begin_scope(id: Option<u64>) -> RequestScope {
    REQUEST.with(|r| {
        let (cur, depth) = r.get();
        if depth > 0 {
            r.set((cur, depth + 1));
            RequestScope { outermost: false }
        } else {
            r.set((id.unwrap_or_else(gen_id), 1));
            RequestScope { outermost: true }
        }
    })
}

/// The ambient request id, if a [`RequestScope`] is open on this thread.
pub fn current_request_id() -> Option<u64> {
    REQUEST.with(|r| {
        let (id, depth) = r.get();
        (depth > 0).then_some(id)
    })
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        REQUEST.with(|r| {
            let (id, depth) = r.get();
            if self.outermost {
                r.set((0, 0));
            } else {
                r.set((id, depth.saturating_sub(1)));
            }
        });
    }
}

/// One entry of the sampler's open-span stack.
struct OpenSpan {
    name: &'static str,
    /// The inner recorder's handle, [`SpanId::NONE`] while unsampled.
    fwd: SpanId,
}

/// Per-thread trace state. One sampler per execution path is assumed
/// (the supported deployment is a single process-wide sampler); see
/// [`SamplingRecorder::span_end`] for how stray entries are handled.
struct TraceState {
    open: Vec<OpenSpan>,
    sampled: bool,
    trace_id: u64,
}

/// The sampling [`Recorder`] wrapper. See the [module docs](self).
pub struct SamplingRecorder {
    inner: Arc<dyn Recorder>,
    /// Sample iff `mix(trace_id) < threshold`.
    threshold: u64,
    /// Rate ≥ 1.0: bypass the hash and sample everything.
    always: bool,
    traces_started: AtomicU64,
    traces_sampled: AtomicU64,
    traces_promoted: AtomicU64,
}

impl SamplingRecorder {
    /// Wraps `inner`, sampling the given fraction of traces (clamped to
    /// `0.0..=1.0`).
    pub fn new(inner: Arc<dyn Recorder>, rate: f64) -> SamplingRecorder {
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        SamplingRecorder {
            inner,
            threshold: (rate * u64::MAX as f64) as u64,
            always: rate >= 1.0,
            traces_started: AtomicU64::new(0),
            traces_sampled: AtomicU64::new(0),
            traces_promoted: AtomicU64::new(0),
        }
    }

    /// Wraps `inner` at [`DEFAULT_SAMPLE_RATE`].
    pub fn with_default_rate(inner: Arc<dyn Recorder>) -> SamplingRecorder {
        Self::new(inner, DEFAULT_SAMPLE_RATE)
    }

    /// The wrapped recorder.
    pub fn inner(&self) -> &Arc<dyn Recorder> {
        &self.inner
    }

    /// Top-level spans (traces) seen so far.
    pub fn traces_started(&self) -> u64 {
        self.traces_started.load(Ordering::Relaxed)
    }

    /// Traces whose spans were forwarded by the probabilistic decision.
    pub fn traces_sampled(&self) -> u64 {
        self.traces_sampled.load(Ordering::Relaxed)
    }

    /// Unsampled traces promoted mid-flight by a budget exhaustion.
    pub fn traces_promoted(&self) -> u64 {
        self.traces_promoted.load(Ordering::Relaxed)
    }

    /// Publishes the sampler's own counters as gauges on `registry`
    /// (they are kept out of the per-trace hot path on purpose).
    pub fn publish(&self, registry: &crate::MetricsRegistry) {
        registry.set_gauge(names::gauge::OBS_TRACES_TOTAL, self.traces_started() as f64);
        registry.set_gauge(
            names::gauge::OBS_TRACES_SAMPLED,
            self.traces_sampled() as f64,
        );
        registry.set_gauge(
            names::gauge::OBS_TRACES_PROMOTED,
            self.traces_promoted() as f64,
        );
    }

    fn decide(&self, trace_id: u64) -> bool {
        self.always || mix(trace_id) < self.threshold
    }

    /// Replays the open ancestry into the inner recorder and marks the
    /// trace sampled. Promoted spans time from the moment of promotion —
    /// the tail of the failing request, which is the part worth keeping.
    fn promote(&self, t: &mut TraceState) {
        t.sampled = true;
        self.traces_promoted.fetch_add(1, Ordering::Relaxed);
        for span in t.open.iter_mut() {
            if span.fwd.is_none() {
                span.fwd = self.inner.span_start(span.name);
            }
        }
    }
}

impl Recorder for SamplingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str) -> SpanId {
        TRACE.with_borrow_mut(|t| {
            if t.open.is_empty() {
                t.trace_id = current_request_id().unwrap_or_else(gen_id);
                t.sampled = self.decide(t.trace_id);
                self.traces_started.fetch_add(1, Ordering::Relaxed);
                if t.sampled {
                    self.traces_sampled.fetch_add(1, Ordering::Relaxed);
                }
            }
            let fwd = if t.sampled {
                self.inner.span_start(name)
            } else {
                SpanId::NONE
            };
            let idx = t.open.len();
            t.open.push(OpenSpan { name, fwd });
            SpanId::from_index(idx)
        })
    }

    fn span_end(&self, id: SpanId) {
        let Some(idx) = id.index() else { return };
        TRACE.with_borrow_mut(|t| {
            if idx >= t.open.len() {
                return; // double-end — ignore
            }
            // Pop innermost-first so the inner recorder sees a proper
            // nesting order; entries above `idx` are leaked guards (or a
            // second sampler's strays) and close implicitly.
            while t.open.len() > idx {
                if let Some(span) = t.open.pop() {
                    if !span.fwd.is_none() {
                        self.inner.span_end(span.fwd);
                    }
                }
            }
        });
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.inner.add(name, delta);
        // Pointer compare first: `names::counter::BUDGET_EXHAUSTED` is a
        // single static, so the content compare almost never runs.
        let exhausted = names::counter::BUDGET_EXHAUSTED;
        if std::ptr::eq(name.as_ptr(), exhausted.as_ptr()) || name == exhausted {
            TRACE.with_borrow_mut(|t| {
                if !t.open.is_empty() && !t.sampled {
                    self.promote(t);
                }
            });
        }
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.inner.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceRecorder;

    fn traced_sampler(rate: f64) -> (SamplingRecorder, Arc<TraceRecorder>) {
        let inner = Arc::new(TraceRecorder::new());
        (SamplingRecorder::new(inner.clone(), rate), inner)
    }

    #[test]
    fn rate_one_forwards_all_spans() {
        let (s, inner) = traced_sampler(1.0);
        let a = s.span_start("outer");
        let b = s.span_start("inner");
        s.span_end(b);
        s.span_end(a);
        assert_eq!(inner.span_count(), 2);
        assert_eq!(s.traces_started(), 1);
        assert_eq!(s.traces_sampled(), 1);
        let report = inner.report();
        assert!(report.span(&["outer", "inner"]).is_some(), "nesting kept");
    }

    #[test]
    fn rate_zero_forwards_no_spans_but_all_counters() {
        let (s, inner) = traced_sampler(0.0);
        let a = s.span_start("outer");
        s.add("c", 3);
        s.observe("h", 9);
        s.span_end(a);
        assert_eq!(inner.span_count(), 0);
        assert_eq!(inner.counter("c"), 3);
        assert_eq!(s.traces_started(), 1);
        assert_eq!(s.traces_sampled(), 0);
    }

    #[test]
    fn budget_exhaustion_promotes_open_trace() {
        let (s, inner) = traced_sampler(0.0);
        let a = s.span_start("dispatch");
        let b = s.span_start("budget_check");
        s.add(names::counter::BUDGET_EXHAUSTED, 1);
        s.span_end(b);
        s.span_end(a);
        assert_eq!(s.traces_promoted(), 1);
        assert_eq!(inner.span_count(), 2, "ancestry replayed on promotion");
        let report = inner.report();
        assert!(report.span(&["dispatch", "budget_check"]).is_some());
        assert_eq!(report.counter(names::counter::BUDGET_EXHAUSTED), 1);
    }

    #[test]
    fn exhaustion_outside_any_trace_is_counted_only() {
        let (s, inner) = traced_sampler(0.0);
        s.add(names::counter::BUDGET_EXHAUSTED, 1);
        assert_eq!(s.traces_promoted(), 0);
        assert_eq!(inner.counter(names::counter::BUDGET_EXHAUSTED), 1);
    }

    #[test]
    fn request_scope_pins_one_decision_per_request() {
        // With an ambient request id, every top-level span in the scope
        // shares the id — so the decision matches across traces.
        let (s, inner) = traced_sampler(0.5);
        for _ in 0..16 {
            let _req = begin_request();
            let counts: Vec<usize> = (0..4)
                .map(|_| {
                    let before = inner.span_count();
                    let a = s.span_start("dispatch");
                    s.span_end(a);
                    inner.span_count() - before
                })
                .collect();
            assert!(
                counts.iter().all(|&c| c == counts[0]),
                "one request, mixed decisions: {counts:?}"
            );
        }
    }

    #[test]
    fn nested_request_scopes_share_the_outer_id() {
        let _outer = begin_request_with_id(42);
        assert_eq!(current_request_id(), Some(42));
        {
            let _inner = begin_request_with_id(7);
            assert_eq!(current_request_id(), Some(42), "outermost wins");
        }
        assert_eq!(current_request_id(), Some(42));
    }

    #[test]
    fn request_scope_clears_on_drop() {
        {
            let _req = begin_request();
            assert!(current_request_id().is_some());
        }
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn sampling_rate_is_roughly_honored() {
        let (s, _inner) = traced_sampler(0.25);
        for _ in 0..4000 {
            let a = s.span_start("t");
            s.span_end(a);
        }
        let frac = s.traces_sampled() as f64 / s.traces_started() as f64;
        assert!((0.15..0.35).contains(&frac), "sampled fraction {frac}");
    }

    #[test]
    fn publish_exports_trace_gauges() {
        let (s, _inner) = traced_sampler(1.0);
        let a = s.span_start("t");
        s.span_end(a);
        let reg = crate::MetricsRegistry::new();
        s.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge(names::gauge::OBS_TRACES_TOTAL), Some(1.0));
        assert_eq!(snap.gauge(names::gauge::OBS_TRACES_SAMPLED), Some(1.0));
        assert_eq!(snap.gauge(names::gauge::OBS_TRACES_PROMOTED), Some(0.0));
    }
}
