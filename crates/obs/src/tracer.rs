//! The collecting [`Recorder`]: a span table with monotonic timestamps,
//! counters, and log₂-bucket latency histograms.

use ssd_base::sync::Mutex;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::names;
use crate::recorder::{Recorder, SpanId};
use crate::report::TraceReport;

/// Default cap on raw spans kept per recorder. Past it, `span_start`
/// returns [`SpanId::NONE`] and bumps [`names::counter::SPANS_DROPPED`],
/// so a pathological workload degrades to counters instead of exhausting
/// memory. 2²⁰ spans ≈ 40 MB. Override with
/// [`TraceRecorder::with_span_capacity`].
const MAX_SPANS: usize = 1 << 20;

/// A fixed-size latency histogram with one bucket per power of two.
///
/// Bucket `i` holds samples whose value has bit-length `i` (so bucket 0 is
/// `v == 0`, bucket 1 is `v == 1`, bucket 2 is `2..=3`, …). 64 buckets
/// cover the whole `u64` range with no allocation and no configuration.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
    /// Per-bucket sample counts, indexed by the sample's bit-length.
    pub buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// The bucket index a value falls into: its bit-length.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else if i == 0 {
            0
        } else {
            (1u64 << i) - 1
        }
    }

    /// Mean sample value, or 0 with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the smallest bucket prefix holding ≥ `q` of the
    /// samples — a coarse quantile.
    ///
    /// ## Error bound
    ///
    /// Buckets are powers of two, so the returned bound overshoots the
    /// true quantile by strictly less than 2× (the true value `v` and the
    /// reported `bucket_upper` share a bit-length: `v ≤ upper < 2v`).
    /// Rank is exact — only the value is quantized.
    ///
    /// ## Edge cases (documented, not surprises)
    ///
    /// * empty histogram → 0, for any `q`;
    /// * `q ≤ 0.0` (and NaN) → the smallest recorded sample's bucket
    ///   upper bound (rank-1 target, never an empty-prefix artifact);
    /// * `q ≥ 1.0` → the largest recorded sample's bucket upper bound;
    /// * a single bucket → that bucket's upper bound, for any `q`.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= target {
                return Self::bucket_upper(i);
            }
        }
        u64::MAX
    }
}

/// One raw span record in the table.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SpanRec {
    pub(crate) name: &'static str,
    pub(crate) parent: Option<usize>,
    pub(crate) start_ns: u64,
    /// `None` while the span is still open.
    pub(crate) dur_ns: Option<u64>,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRec>,
    /// Indices of currently-open spans, innermost last.
    stack: Vec<usize>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

/// The collecting [`Recorder`].
///
/// Timestamps are nanoseconds since the recorder's creation, read from a
/// monotonic [`Instant`]. Interior mutability is a single [`Mutex`] —
/// tracing is for diagnosis runs, not for the disabled hot path, so lock
/// simplicity beats lock-freedom here. A poisoned lock (a panic while
/// recording) is recovered: telemetry must never turn a diagnosable crash
/// into a second one.
pub struct TraceRecorder {
    origin: Instant,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// A fresh, empty recorder; its clock starts now.
    pub fn new() -> Self {
        Self::with_span_capacity(MAX_SPANS)
    }

    /// A recorder whose span table holds at most `capacity` raw spans;
    /// spans past the cap are dropped (counted, never silently — see
    /// [`TraceRecorder::spans_dropped`]).
    pub fn with_span_capacity(capacity: usize) -> Self {
        TraceRecorder {
            origin: Instant::now(),
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    fn lock(&self) -> ssd_base::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of raw spans recorded so far (open and closed).
    pub fn span_count(&self) -> usize {
        self.lock().spans.len()
    }

    /// Current value of counter `name` (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Spans dropped because the span table hit its capacity. Also
    /// available as the [`names::counter::SPANS_DROPPED`] counter and
    /// surfaced by [`TraceReport`] (tree and JSON).
    pub fn spans_dropped(&self) -> u64 {
        self.counter(names::counter::SPANS_DROPPED)
    }

    /// A point-in-time [`TraceReport`]: the span tree aggregated by name,
    /// all counters, and all histograms. Spans still open are reported
    /// with their elapsed-so-far duration.
    pub fn report(&self) -> TraceReport {
        let now = self.now_ns();
        let inner = self.lock();
        TraceReport::build(&inner.spans, &inner.counters, &inner.hists, now)
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &'static str) -> SpanId {
        let start_ns = self.now_ns();
        let mut inner = self.lock();
        if inner.spans.len() >= self.capacity {
            *inner
                .counters
                .entry(names::counter::SPANS_DROPPED)
                .or_insert(0) += 1;
            return SpanId::NONE;
        }
        let idx = inner.spans.len();
        let parent = inner.stack.last().copied();
        inner.spans.push(SpanRec {
            name,
            parent,
            start_ns,
            dur_ns: None,
        });
        inner.stack.push(idx);
        SpanId::from_index(idx)
    }

    fn span_end(&self, id: SpanId) {
        let Some(idx) = id.index() else { return };
        let end_ns = self.now_ns();
        let mut inner = self.lock();
        let Some(pos) = inner.stack.iter().rposition(|&i| i == idx) else {
            return; // already closed (double-end) — ignore
        };
        // Closing an outer span implicitly closes anything still open
        // inside it (a leaked guard), so nesting stays a tree.
        let to_close = inner.stack.split_off(pos);
        for open in to_close {
            let start = inner.spans[open].start_ns;
            inner.spans[open].dur_ns = Some(end_ns.saturating_sub(start));
        }
        let name = inner.spans[idx].name;
        let dur = inner.spans[idx].dur_ns.unwrap_or(0);
        inner.hists.entry(name).or_default().record(dur);
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.lock().hists.entry(name).or_default().record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::span;

    #[test]
    fn spans_nest_and_close() {
        let rec = TraceRecorder::new();
        let a = rec.span_start("outer");
        let b = rec.span_start("inner");
        rec.span_end(b);
        rec.span_end(a);
        let inner = rec.lock();
        assert_eq!(inner.spans.len(), 2);
        assert_eq!(inner.spans[0].parent, None);
        assert_eq!(inner.spans[1].parent, Some(0));
        assert!(inner.spans.iter().all(|s| s.dur_ns.is_some()));
        assert!(inner.stack.is_empty());
    }

    #[test]
    fn outer_end_closes_leaked_inner() {
        let rec = TraceRecorder::new();
        let a = rec.span_start("outer");
        let _leaked = rec.span_start("inner");
        rec.span_end(a);
        let inner = rec.lock();
        assert!(inner.stack.is_empty());
        assert!(inner.spans[1].dur_ns.is_some());
    }

    #[test]
    fn double_end_is_ignored() {
        let rec = TraceRecorder::new();
        let a = rec.span_start("x");
        rec.span_end(a);
        rec.span_end(a);
        assert_eq!(rec.lock().hists.get("x").unwrap().count, 1);
    }

    #[test]
    fn raii_guard_records() {
        let rec = TraceRecorder::new();
        {
            let _g = span(&rec, "phase");
        }
        assert_eq!(rec.span_count(), 1);
        assert_eq!(rec.lock().hists.get("phase").unwrap().count, 1);
    }

    #[test]
    fn counters_accumulate() {
        let rec = TraceRecorder::new();
        rec.add("c", 2);
        rec.add("c", 3);
        assert_eq!(rec.counter("c"), 5);
        assert_eq!(rec.counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.mean(), 201);
        assert_eq!(h.quantile_upper(0.5), 3);
        assert_eq!(h.quantile_upper(1.0), 1023);
        assert_eq!(Histogram::default().quantile_upper(0.5), 0);
    }

    #[test]
    fn quantile_edge_cases_are_documented_values() {
        // Empty: 0 for any q.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 1.0, f64::NAN] {
            assert_eq!(empty.quantile_upper(q), 0);
        }
        // q=0.0 is the *smallest sample's* bucket, not bucket 0's bound.
        let mut h = Histogram::default();
        h.record(4);
        h.record(1000);
        assert_eq!(h.quantile_upper(0.0), 7);
        assert_eq!(h.quantile_upper(-3.0), 7);
        assert_eq!(h.quantile_upper(f64::NAN), 7);
        // q=1.0 (and out-of-range above) is the largest sample's bucket.
        assert_eq!(h.quantile_upper(1.0), 1023);
        assert_eq!(h.quantile_upper(2.0), 1023);
        // Single bucket: that bucket's bound for every q.
        let mut single = Histogram::default();
        single.record(5);
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(single.quantile_upper(q), 7);
        }
    }

    #[test]
    fn span_capacity_drops_are_counted() {
        let rec = TraceRecorder::with_span_capacity(2);
        let a = rec.span_start("a");
        let b = rec.span_start("b");
        let c = rec.span_start("c");
        assert!(c.is_none(), "past-capacity span gets the null handle");
        rec.span_end(c);
        rec.span_end(b);
        rec.span_end(a);
        assert_eq!(rec.span_count(), 2);
        assert_eq!(rec.spans_dropped(), 1);
        assert_eq!(rec.counter(names::counter::SPANS_DROPPED), 1);
    }

    #[test]
    fn ending_the_null_span_is_inert() {
        let rec = TraceRecorder::new();
        rec.span_end(SpanId::NONE);
        assert_eq!(rec.span_count(), 0);
    }
}
