//! Point-in-time snapshots of a [`crate::TraceRecorder`], with a
//! human-readable tree renderer and a hand-rolled JSON exporter.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::JsonValue;
use crate::tracer::{Histogram, SpanRec};

/// One node of the aggregated span tree: all raw spans with the same name
/// under the same parent node are merged, so the report stays bounded no
/// matter how many times a phase ran.
#[derive(Clone, Debug)]
pub struct ReportSpan {
    /// Span name (from [`crate::names::span`]).
    pub name: String,
    /// How many raw spans were merged into this node.
    pub count: u64,
    /// Total wall-clock nanoseconds across the merged spans.
    pub total_ns: u64,
    /// Aggregated child phases, in first-seen order.
    pub children: Vec<ReportSpan>,
}

/// A snapshot of everything a recorder collected: the aggregated span
/// tree, all counters, and all histograms.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Top-level aggregated spans, in first-seen order.
    pub roots: Vec<ReportSpan>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Spans dropped by the recorder's capacity cap — when nonzero, the
    /// span tree is a *truncated* view of the run.
    pub spans_dropped: u64,
}

/// Aggregation node used while folding raw spans into the tree.
#[derive(Default)]
struct Agg {
    count: u64,
    total_ns: u64,
    /// child name → index into `order`/`children`, preserving first-seen
    /// order for stable output.
    index: BTreeMap<&'static str, usize>,
    order: Vec<&'static str>,
    children: Vec<Agg>,
}

impl Agg {
    fn child(&mut self, name: &'static str) -> &mut Agg {
        let idx = *self.index.entry(name).or_insert_with(|| {
            self.order.push(name);
            self.children.push(Agg::default());
            self.children.len() - 1
        });
        &mut self.children[idx]
    }

    fn into_spans(self) -> Vec<ReportSpan> {
        self.order
            .into_iter()
            .zip(self.children)
            .map(|(name, agg)| ReportSpan {
                name: name.to_owned(),
                count: agg.count,
                total_ns: agg.total_ns,
                children: agg.into_spans(),
            })
            .collect()
    }
}

impl TraceReport {
    /// Folds the raw span table into the aggregated tree. Spans still
    /// open get `now_ns − start` as their duration.
    pub(crate) fn build(
        spans: &[SpanRec],
        counters: &BTreeMap<&'static str, u64>,
        hists: &BTreeMap<&'static str, Histogram>,
        now_ns: u64,
    ) -> TraceReport {
        // Path from each raw span to the root, so every span lands under
        // the aggregation node matching its ancestor-name chain.
        let mut root = Agg::default();
        let mut path = Vec::new();
        for span in spans {
            path.clear();
            path.push(span.name);
            let mut cur = span.parent;
            while let Some(p) = cur {
                path.push(spans[p].name);
                cur = spans[p].parent;
            }
            let mut node = &mut root;
            for &name in path.iter().rev() {
                node = node.child(name);
            }
            node.count += 1;
            node.total_ns += span
                .dur_ns
                .unwrap_or_else(|| now_ns.saturating_sub(span.start_ns));
        }
        TraceReport {
            roots: root.into_spans(),
            spans_dropped: counters
                .get(crate::names::counter::SPANS_DROPPED)
                .copied()
                .unwrap_or(0),
            counters: counters
                .iter()
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            histograms: hists
                .iter()
                .map(|(k, h)| ((*k).to_owned(), h.clone()))
                .collect(),
        }
    }

    /// Looks up an aggregated span by its root-to-node name path.
    pub fn span(&self, path: &[&str]) -> Option<&ReportSpan> {
        let (first, rest) = path.split_first()?;
        let mut node = self.roots.iter().find(|s| s.name == *first)?;
        for name in rest {
            node = node.children.iter().find(|s| s.name == *name)?;
        }
        Some(node)
    }

    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Human-readable indented tree: per-phase wall time, call counts,
    /// then counters and histogram summaries.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str("phase timings:\n");
        for root in &self.roots {
            render_span(root, 1, &mut out);
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(
                out,
                "  !! {} span(s) dropped at capacity — tree is truncated",
                self.spans_dropped
            );
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (ns unless noted):\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} n={} mean={} p50<={} max<={}",
                    h.count,
                    h.mean(),
                    h.quantile_upper(0.5),
                    h.quantile_upper(1.0),
                );
            }
        }
        out
    }

    /// The machine-readable export: a compact JSON document with
    /// `version`, `spans` (the aggregated tree), `counters`, and
    /// `histograms`. Parse it back with [`JsonValue::parse`].
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("version", JsonValue::num(1)),
            ("spans_dropped", JsonValue::num(self.spans_dropped)),
            (
                "spans",
                JsonValue::Arr(self.roots.iter().map(span_json).collect()),
            ),
            (
                "counters",
                JsonValue::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                JsonValue::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            (
                                k.clone(),
                                JsonValue::obj(vec![
                                    ("count", JsonValue::num(h.count)),
                                    ("sum", JsonValue::num(h.sum)),
                                    ("mean", JsonValue::num(h.mean())),
                                    ("p50_upper", JsonValue::num(h.quantile_upper(0.5))),
                                    ("p90_upper", JsonValue::num(h.quantile_upper(0.9))),
                                    ("max_upper", JsonValue::num(h.quantile_upper(1.0))),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// [`TraceReport::to_json`] serialized to a compact string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }
}

fn render_span(span: &ReportSpan, depth: usize, out: &mut String) {
    let _ = writeln!(
        out,
        "{:indent$}{:<width$} {:>12} ns  x{}",
        "",
        span.name,
        span.total_ns,
        span.count,
        indent = depth * 2,
        width = 34usize.saturating_sub(depth * 2),
    );
    for child in &span.children {
        render_span(child, depth + 1, out);
    }
}

fn span_json(span: &ReportSpan) -> JsonValue {
    JsonValue::obj(vec![
        ("name", JsonValue::str(span.name.clone())),
        ("count", JsonValue::num(span.count)),
        ("total_ns", JsonValue::num(span.total_ns)),
        (
            "children",
            JsonValue::Arr(span.children.iter().map(span_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{span, Recorder};
    use crate::tracer::TraceRecorder;

    fn sample_recorder() -> TraceRecorder {
        let rec = TraceRecorder::new();
        for _ in 0..3 {
            let _outer = span(&rec, "dispatch");
            let _inner = span(&rec, "feas");
        }
        {
            let _other = span(&rec, "infer");
        }
        rec.add("verdict_sat", 2);
        rec.observe("nfa_states_built", 17);
        rec
    }

    #[test]
    fn aggregates_by_name_under_parent() {
        let report = sample_recorder().report();
        assert_eq!(report.roots.len(), 2);
        let dispatch = report.span(&["dispatch"]).unwrap();
        assert_eq!(dispatch.count, 3);
        assert_eq!(report.span(&["dispatch", "feas"]).unwrap().count, 3);
        assert_eq!(report.span(&["infer"]).unwrap().count, 1);
        assert!(report.span(&["feas"]).is_none(), "feas is nested, not root");
        assert_eq!(report.counter("verdict_sat"), 2);
        assert_eq!(report.counter("missing"), 0);
    }

    #[test]
    fn open_spans_report_elapsed() {
        let rec = TraceRecorder::new();
        let _id = rec.span_start("open_phase");
        let report = rec.report();
        let node = report.span(&["open_phase"]).unwrap();
        assert_eq!(node.count, 1);
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let report = sample_recorder().report();
        let text = report.to_json_string();
        let parsed = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("version").unwrap().as_u64(), Some(1));
        let spans = parsed.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("dispatch"));
        assert_eq!(spans[0].get("count").unwrap().as_u64(), Some(3));
        let kids = spans[0].get("children").unwrap().as_array().unwrap();
        assert_eq!(kids[0].get("name").unwrap().as_str(), Some("feas"));
        let counters = parsed.get("counters").unwrap();
        assert_eq!(counters.get("verdict_sat").unwrap().as_u64(), Some(2));
        let hists = parsed.get("histograms").unwrap();
        let nfa = hists.get("nfa_states_built").unwrap();
        assert_eq!(nfa.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(nfa.get("sum").unwrap().as_u64(), Some(17));
        // the greppable shape CI relies on
        assert!(text.contains(r#""name":"dispatch""#));
    }

    #[test]
    fn dropped_spans_surface_in_tree_and_json() {
        let rec = TraceRecorder::with_span_capacity(1);
        let a = rec.span_start("kept");
        let b = rec.span_start("lost");
        rec.span_end(b);
        rec.span_end(a);
        let report = rec.report();
        assert_eq!(report.spans_dropped, 1);
        let tree = report.render_tree();
        assert!(tree.contains("1 span(s) dropped"), "{tree}");
        let parsed = JsonValue::parse(&report.to_json_string()).unwrap();
        assert_eq!(
            parsed.get("spans_dropped").and_then(JsonValue::as_u64),
            Some(1)
        );
        // A clean run reports zero and renders no warning.
        let clean = sample_recorder().report();
        assert_eq!(clean.spans_dropped, 0);
        assert!(!clean.render_tree().contains("dropped"));
    }

    #[test]
    fn tree_renderer_mentions_each_phase() {
        let rendered = sample_recorder().report().render_tree();
        for needle in ["dispatch", "feas", "infer", "verdict_sat", "x3"] {
            assert!(rendered.contains(needle), "missing {needle}:\n{rendered}");
        }
    }
}
