//! A minimal JSON value model with a compact writer and a validating
//! parser — hand-rolled (no serde) so the workspace stays dependency-free.
//!
//! The writer emits compact JSON (no whitespace) with stable key order
//! (insertion order of [`JsonValue::Obj`]), which keeps telemetry
//! artifacts greppable (`"name":"dispatch"` is a literal substring). The
//! parser accepts standard JSON and is used by tests and consumers to
//! round-trip-validate emitted artifacts.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (they are association
/// lists, not maps), which keeps serialized output deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as an ordered association list.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Convenience: an integer value (exact for |n| ≤ 2⁵³).
    pub fn num(n: u64) -> JsonValue {
        JsonValue::Num(n as f64)
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes compactly into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(*n, out),
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes compactly into a fresh string.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(JsonValue::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(str::to_owned)?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        // Surrogate pairs are not reconstructed (the writer
                        // never emits them); lone surrogates map to U+FFFD.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structure() {
        let v = JsonValue::obj(vec![
            ("name", JsonValue::str("dispatch")),
            ("count", JsonValue::num(3)),
            (
                "children",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("name", JsonValue::str("feas")),
                    ("total_ns", JsonValue::num(123_456_789)),
                ])]),
            ),
            ("ok", JsonValue::Bool(true)),
            ("nothing", JsonValue::Null),
        ]);
        let text = v.to_json_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_writer_is_greppable() {
        let v = JsonValue::obj(vec![("name", JsonValue::str("product_bfs"))]);
        assert_eq!(v.to_json_string(), r#"{"name":"product_bfs"}"#);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = JsonValue::str("a\"b\\c\nd\te\u{1}f — π");
        let text = v.to_json_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_roundtrip() {
        for n in [0u64, 1, 42, 1_000_000_007, u64::MAX >> 12] {
            let text = JsonValue::num(n).to_json_string();
            assert_eq!(JsonValue::parse(&text).unwrap().as_u64(), Some(n));
        }
        let v = JsonValue::Num(1.5);
        assert_eq!(JsonValue::parse(&v.to_json_string()).unwrap(), v);
        assert_eq!(JsonValue::parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
    }

    #[test]
    fn adversarial_strings_roundtrip() {
        // Every control character, alone and embedded.
        for cp in 0u32..0x20 {
            let c = char::from_u32(cp).unwrap();
            for s in [format!("{c}"), format!("a{c}b"), format!("{c}{c}{c}")] {
                let v = JsonValue::str(s.clone());
                let text = v.to_json_string();
                assert_eq!(JsonValue::parse(&text).unwrap(), v, "cp {cp:#x}: {text}");
            }
        }
        // Pathological quote/backslash runs, including trailing ones.
        for s in [
            r#"""#,
            r"\",
            r#"\""#,
            r#""\"#,
            r"\\\\",
            r#"\"\"\"#,
            "ends with backslash\\",
            "\\starts",
            "\"all\"quoted\"",
        ] {
            let v = JsonValue::str(s);
            let text = v.to_json_string();
            assert_eq!(JsonValue::parse(&text).unwrap(), v, "input {s:?}: {text}");
        }
        // Non-ASCII: multibyte UTF-8, astral plane, combining marks, RTL.
        for s in [
            "π≠∅",
            "日本語テスト",
            "👩‍🔬🚀",
            "e\u{301}tude",
            "שָׁלוֹם",
            "\u{2028}\u{2029}",
        ] {
            let v = JsonValue::str(s);
            assert_eq!(JsonValue::parse(&v.to_json_string()).unwrap(), v, "{s:?}");
        }
        // Adversarial object keys survive too (keys share the writer).
        let v = JsonValue::Obj(vec![
            ("a\"b\\c".to_owned(), JsonValue::num(1)),
            ("\u{7}\u{0}".to_owned(), JsonValue::str("bell+nul")),
        ]);
        assert_eq!(JsonValue::parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn parser_escape_forms() {
        // All single-char escapes plus \u forms.
        assert_eq!(
            JsonValue::parse(r#""\"\\\/\n\r\t\b\f""#).unwrap(),
            JsonValue::str("\"\\/\n\r\t\u{8}\u{c}")
        );
        assert_eq!(JsonValue::parse(r#""Aé☃""#).unwrap(), JsonValue::str("Aé☃"));
        // Lone surrogates map to U+FFFD instead of breaking the string.
        assert_eq!(
            JsonValue::parse(r#""\ud800x""#).unwrap(),
            JsonValue::str("\u{fffd}x")
        );
        // Truncated/bad escapes are rejected, not mangled.
        assert!(JsonValue::parse(r#""\u00""#).is_err());
        assert!(JsonValue::parse(r#""\uzzzz""#).is_err());
        assert!(JsonValue::parse(r#""\q""#).is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{}extra").is_err());
        assert!(JsonValue::parse("nope").is_err());
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"a":[1,2],"b":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("c").is_none());
        assert_eq!(v.as_object().unwrap().len(), 2);
    }
}
