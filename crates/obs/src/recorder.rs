//! The [`Recorder`] sink trait, its no-op implementation, and the RAII
//! span guard.
//!
//! Engines are instrumented against `&dyn Recorder`; when tracing is off
//! they receive [`NoopRecorder`], whose methods are empty inline bodies —
//! the instrumentation then costs one virtual `enabled()` check per span,
//! which is noise next to any automaton construction it wraps.

/// An opaque handle to an open span, returned by
/// [`Recorder::span_start`] and consumed by [`Recorder::span_end`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanId(u64);

impl SpanId {
    /// The null handle: ending it is a no-op. Returned by disabled
    /// recorders and by recorders that hit their span capacity.
    pub const NONE: SpanId = SpanId(u64::MAX);

    /// Whether this is the null handle.
    pub fn is_none(self) -> bool {
        self.0 == u64::MAX
    }

    /// The span's index in the recorder's span table, if any.
    pub fn index(self) -> Option<usize> {
        if self.is_none() {
            None
        } else {
            Some(self.0 as usize)
        }
    }

    /// Wraps a span-table index.
    pub fn from_index(i: usize) -> SpanId {
        debug_assert!((i as u64) < u64::MAX);
        SpanId(i as u64)
    }
}

/// A sink for structured observations: nested spans, monotone counters,
/// and histogram samples.
///
/// All methods take `&self` — implementations use interior mutability so
/// one recorder can be shared by a whole analysis session and its caches.
/// Counter and histogram names are `&'static str` drawn from
/// [`crate::names`], so recording never allocates on the caller side.
pub trait Recorder: Send + Sync {
    /// Whether observations are collected at all. Instrumented code may
    /// use this to skip preparing expensive arguments.
    fn enabled(&self) -> bool;

    /// Opens a span named `name`, nested under the innermost span that is
    /// still open. Returns a handle for [`Recorder::span_end`].
    fn span_start(&self, name: &'static str) -> SpanId;

    /// Closes the span `id`, recording its wall-clock duration.
    fn span_end(&self, id: SpanId);

    /// Adds `delta` to the counter `name`.
    fn add(&self, name: &'static str, delta: u64);

    /// Records one sample of `value` into the histogram `name`.
    fn observe(&self, name: &'static str, value: u64);
}

/// The disabled recorder: every method is an empty inline body.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn span_start(&self, _name: &'static str) -> SpanId {
        SpanId::NONE
    }

    #[inline]
    fn span_end(&self, _id: SpanId) {}

    #[inline]
    fn add(&self, _name: &'static str, _delta: u64) {}

    #[inline]
    fn observe(&self, _name: &'static str, _value: u64) {}
}

/// The shared disabled recorder (a zero-sized static — no allocation).
pub fn noop() -> &'static dyn Recorder {
    static NOOP: NoopRecorder = NoopRecorder;
    &NOOP
}

/// An open span that closes itself on drop. Created by [`span`].
pub struct Span<'a> {
    rec: Option<&'a dyn Recorder>,
    id: SpanId,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            rec.span_end(self.id);
        }
    }
}

/// Opens a span on `rec`, returning a guard that closes it when dropped.
/// When `rec` is disabled this does no work beyond the `enabled()` check.
pub fn span<'a>(rec: &'a dyn Recorder, name: &'static str) -> Span<'a> {
    if rec.enabled() {
        Span {
            id: rec.span_start(name),
            rec: Some(rec),
        }
    } else {
        Span {
            rec: None,
            id: SpanId::NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let rec = noop();
        assert!(!rec.enabled());
        let id = rec.span_start("x");
        assert!(id.is_none());
        rec.span_end(id);
        rec.add("c", 1);
        rec.observe("h", 2);
    }

    #[test]
    fn span_guard_on_noop_does_nothing() {
        let rec = noop();
        let g = span(rec, "phase");
        assert!(g.id.is_none());
        drop(g);
    }

    #[test]
    fn span_id_roundtrip() {
        let id = SpanId::from_index(7);
        assert_eq!(id.index(), Some(7));
        assert!(!id.is_none());
        assert_eq!(SpanId::NONE.index(), None);
    }
}
