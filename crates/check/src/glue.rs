//! Bridges `ssd_base::sync::rt` hook calls into the scheduler. Only
//! compiled under `cfg(ssd_model_check)`; installing the hooks is what
//! turns every shim lock/atomic/once operation into a schedule point.

use ssd_base::sync::rt::{self, AtomicKind, Hooks, OnceRole, OpCall, OpReply};
use ssd_base::sync::Ordering;

use crate::sched::{self, AtomKind, Op, Reply};

static HOOKS: Hooks = Hooks {
    new_object: sched::next_obj_id,
    op: glue_op,
};

/// Install the hook table (idempotent; called by every `check_with`).
pub(crate) fn ensure_installed() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| rt::install(&HOOKS));
}

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn glue_op(call: OpCall) -> OpReply {
    let op = match call {
        OpCall::MutexLock { id } => Op::MutexLock(id),
        OpCall::MutexUnlock { id } => Op::MutexUnlock(id),
        OpCall::RwAcquire { id, write } => Op::RwAcquire(id, write),
        OpCall::RwTryAcquire { id, write } => Op::RwTryAcquire(id, write),
        OpCall::RwRelease { id, write } => Op::RwRelease(id, write),
        OpCall::OnceAcquire { id } => Op::OnceAcquire(id),
        OpCall::OnceComplete { id } => Op::OnceComplete(id),
        OpCall::OnceAbort { id } => Op::OnceAbort(id),
        OpCall::OnceGet { id } => Op::OnceGet(id),
        OpCall::Atomic { id, kind, order } => {
            let (kind, acq, rel) = match kind {
                AtomicKind::Load => (AtomKind::Load, is_acquire(order), false),
                AtomicKind::Store => (AtomKind::Store, false, is_release(order)),
                AtomicKind::Rmw => (AtomKind::Rmw, is_acquire(order), is_release(order)),
            };
            Op::Atomic { id, kind, acq, rel }
        }
    };
    match sched::request(op) {
        Reply::Unit => OpReply::Unit,
        Reply::Acquired(ok) => OpReply::Acquired(ok),
        Reply::Role(true) => OpReply::Role(OnceRole::Winner),
        Reply::Role(false) => OpReply::Role(OnceRole::Done),
    }
}
