//! The deterministic scheduler and DFS schedule explorer.
//!
//! Logical threads are real OS threads, but only one ever runs at a
//! time: every instrumented operation parks the thread and hands a
//! token back to the controller, which picks the next thread to run.
//! The sequence of picks at *decision points* (moments where more than
//! one thread could be chosen under the preemption bound) identifies a
//! schedule; the explorer enumerates schedules depth-first by replaying
//! a decision prefix and taking the first untried alternative at the
//! deepest point.
//!
//! Failure handling deliberately avoids ever blocking on a real lock in
//! an inconsistent state: when an execution fails (race, deadlock,
//! panic, step limit), the scheduler switches to *drain* mode — threads
//! at non-blocking points proceed permissively, threads at blocking
//! acquire points unwind via a private panic payload ([`AbortExec`]),
//! releasing their real locks on the way out — so every OS thread joins
//! and the explorer can report the failure.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;
use crate::{Config, Failure, Report};

/// Process-unique shim/model object ids (never 0; the shim uses 0 as
/// "unassigned").
static NEXT_OBJ_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_obj_id() -> u64 {
    NEXT_OBJ_ID.fetch_add(1, Ordering::Relaxed)
}

/// Atomic access kind, after the shim's ordering has been folded into
/// explicit acquire/release bits.
// In a plain (non-`ssd_model_check`) build only the thread/RaceCell ops
// are ever constructed — the rest arrive via the cfg-gated glue.
#[cfg_attr(not(ssd_model_check), allow(dead_code))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AtomKind {
    Load,
    Store,
    Rmw,
}

/// One instrumented operation a logical thread announces.
#[cfg_attr(not(ssd_model_check), allow(dead_code))]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// First op of every logical thread; enabled once the parent's
    /// `Spawn` has been applied (thread 0 starts enabled).
    Start,
    MutexLock(u64),
    MutexUnlock(u64),
    /// `write = true` for the exclusive side.
    RwAcquire(u64, bool),
    RwTryAcquire(u64, bool),
    RwRelease(u64, bool),
    OnceAcquire(u64),
    OnceComplete(u64),
    OnceAbort(u64),
    OnceGet(u64),
    Atomic {
        id: u64,
        kind: AtomKind,
        acq: bool,
        rel: bool,
    },
    /// Plain-memory accesses of a [`crate::RaceCell`].
    RaceRead(u64),
    RaceWrite(u64),
    Spawn(usize),
    Join(usize),
}

#[cfg_attr(not(ssd_model_check), allow(dead_code))]
#[derive(Clone, Copy, Debug)]
pub(crate) enum Reply {
    Unit,
    Acquired(bool),
    /// `true` = the caller won a once-init election.
    Role(bool),
}

/// Panic payload used to unwind threads when an execution is abandoned.
struct AbortExec;

/// Per-object model state, created lazily on first use each execution.
enum Obj {
    Mutex {
        owner: Option<usize>,
        clock: VClock,
    },
    Rw {
        writer: Option<usize>,
        readers: Vec<usize>,
        /// Released by writers; joined by every acquire.
        wclock: VClock,
        /// Released by readers; joined by writer acquires only.
        rclock: VClock,
    },
    Once {
        init_by: Option<usize>,
        done: bool,
        clock: VClock,
    },
    Atomic {
        /// Thread and clock of the most recent store/RMW.
        last_store: Option<(usize, VClock)>,
        /// Accumulated release clock (release stores and RMWs).
        rel: VClock,
    },
    Race {
        last_write: Option<(usize, VClock)>,
        reads: Vec<(usize, VClock)>,
    },
}

struct Th {
    next: Option<Op>,
    granted: bool,
    reply: Reply,
    finished: bool,
    /// Set by the parent's `Spawn` application; gates `Start`.
    started: bool,
    clock: VClock,
}

impl Th {
    fn new() -> Th {
        Th {
            next: None,
            granted: false,
            reply: Reply::Unit,
            finished: false,
            started: false,
            clock: VClock::new(),
        }
    }
}

struct St {
    threads: Vec<Th>,
    objs: HashMap<u64, Obj>,
    /// The thread currently running user code (holds the token).
    running: Option<usize>,
    /// The thread that ran the previous step, for preemption counting.
    prev: Option<usize>,
    failed: Option<Failure>,
    draining: bool,
    steps: u64,
    /// Ring of recent steps, kept small for failure reports.
    trace: Vec<String>,
    relaxed_obs: u64,
}

const TRACE_CAP: usize = 64;

impl St {
    fn push_trace(&mut self, line: String) {
        if self.trace.len() == TRACE_CAP {
            self.trace.remove(0);
        }
        self.trace.push(line);
    }
}

pub(crate) struct Exec {
    st: Mutex<St>,
    cv: Condvar,
    /// Real join handles of every spawned logical thread.
    os: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn lock_st(exec: &Exec) -> MutexGuard<'_, St> {
    exec.st.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_st<'a>(exec: &'a Exec, st: MutexGuard<'a, St>) -> MutexGuard<'a, St> {
    exec.cv.wait(st).unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Announce `op` and park until the controller grants it (or the
/// execution is being drained, in which case reply permissively or
/// unwind).
pub(crate) fn request(op: Op) -> Reply {
    let Some((exec, me)) = ctx() else {
        return Reply::Unit;
    };
    let mut st = lock_st(&exec);
    if st.draining {
        return drain_reply(&exec, st, me, op);
    }
    st.threads[me].next = Some(op);
    st.running = None;
    exec.cv.notify_all();
    loop {
        if st.threads[me].granted {
            st.threads[me].granted = false;
            return st.threads[me].reply;
        }
        if st.draining {
            st.threads[me].next = None;
            return drain_reply(&exec, st, me, op);
        }
        st = wait_st(&exec, st);
    }
}

/// Drain-mode reply. Blocking acquires unwind (releasing real locks on
/// the way); everything else proceeds permissively. Release-shaped ops
/// must never unwind here: they run inside guard `Drop` impls, and a
/// panic mid-unwind would abort the process.
fn drain_reply(exec: &Exec, st: MutexGuard<'_, St>, _me: usize, op: Op) -> Reply {
    exec.cv.notify_all();
    match op {
        Op::MutexLock(_) | Op::RwAcquire(..) => {
            drop(st);
            std::panic::panic_any(AbortExec);
        }
        Op::RwTryAcquire(..) => Reply::Acquired(true),
        Op::OnceAcquire(_) => Reply::Role(true),
        _ => Reply::Unit,
    }
}

/// Runs one logical thread: tag the OS thread, wait for the `Start`
/// grant, run the closure, publish the result, mark finished.
fn thread_body<T>(exec: Arc<Exec>, me: usize, f: impl FnOnce() -> T, result: &Mutex<Option<T>>) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    #[cfg(ssd_model_check)]
    ssd_base::sync::rt::set_modeled(true);
    let out = catch_unwind(AssertUnwindSafe(|| {
        request(Op::Start);
        f()
    }));
    #[cfg(ssd_model_check)]
    ssd_base::sync::rt::set_modeled(false);
    CTX.with(|c| *c.borrow_mut() = None);
    let panic_msg = match out {
        Ok(v) => {
            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            None
        }
        Err(payload) => {
            if payload.downcast_ref::<AbortExec>().is_some() {
                None
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_owned())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("panic with non-string payload".to_owned())
            }
        }
    };
    let mut st = lock_st(&exec);
    st.threads[me].finished = true;
    st.threads[me].next = None;
    if st.running == Some(me) {
        st.running = None;
    }
    if let Some(message) = panic_msg {
        if st.failed.is_none() {
            let trace = st.trace.clone();
            st.failed = Some(Failure::Panic {
                thread: me,
                message,
                trace,
            });
        }
        st.draining = true;
    }
    exec.cv.notify_all();
}

/// Spawn a logical thread inside the current model execution; outside a
/// model run, fall through to `std::thread::spawn`.
pub(crate) fn spawn_thread<T, F>(f: F) -> crate::thread::JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let Some((exec, _me)) = ctx() else {
        return crate::thread::JoinHandle::from_os(std::thread::spawn(f));
    };
    let result = Arc::new(Mutex::new(None));
    let child = {
        let mut st = lock_st(&exec);
        st.threads.push(Th::new());
        st.threads.len() - 1
    };
    let exec2 = Arc::clone(&exec);
    let result2 = Arc::clone(&result);
    let os = match std::thread::Builder::new()
        .name(format!("ssd-check-t{child}"))
        .spawn(move || thread_body(exec2, child, f, &result2))
    {
        Ok(h) => h,
        Err(e) => panic!("failed to spawn model thread: {e}"),
    };
    exec.os.lock().unwrap_or_else(|e| e.into_inner()).push(os);
    request(Op::Spawn(child));
    crate::thread::JoinHandle::from_model(exec, child, result)
}

/// Blocking join on a model thread: the `Join` op is the HB edge; the
/// wait loop below only does real waiting in drain mode (in a granted
/// schedule the target is already finished).
pub(crate) fn join_thread<T>(exec: &Arc<Exec>, target: usize, result: &Mutex<Option<T>>) -> T {
    request(Op::Join(target));
    let mut st = lock_st(exec);
    while !st.threads[target].finished {
        st = wait_st(exec, st);
    }
    drop(st);
    let out = result.lock().unwrap_or_else(|e| e.into_inner()).take();
    match out {
        Some(v) => v,
        // The target aborted or panicked; this execution is being
        // abandoned, so unwind the joiner too.
        None => std::panic::panic_any(AbortExec),
    }
}

fn obj_for(objs: &mut HashMap<u64, Obj>, id: u64, op: Op) -> &mut Obj {
    objs.entry(id).or_insert_with(|| match op {
        Op::MutexLock(_) | Op::MutexUnlock(_) => Obj::Mutex {
            owner: None,
            clock: VClock::new(),
        },
        Op::RwAcquire(..) | Op::RwTryAcquire(..) | Op::RwRelease(..) => Obj::Rw {
            writer: None,
            readers: Vec::new(),
            wclock: VClock::new(),
            rclock: VClock::new(),
        },
        Op::OnceAcquire(_) | Op::OnceComplete(_) | Op::OnceAbort(_) | Op::OnceGet(_) => Obj::Once {
            init_by: None,
            done: false,
            clock: VClock::new(),
        },
        Op::Atomic { .. } => Obj::Atomic {
            last_store: None,
            rel: VClock::new(),
        },
        Op::RaceRead(_) | Op::RaceWrite(_) => Obj::Race {
            last_write: None,
            reads: Vec::new(),
        },
        Op::Start | Op::Spawn(_) | Op::Join(_) => {
            unreachable!("thread ops carry no object id")
        }
    })
}

/// Whether `op` can run now without blocking, given the virtual state.
fn enabled(st: &St, me: usize, op: Op) -> bool {
    match op {
        Op::Start => st.threads[me].started,
        Op::MutexLock(id) => match st.objs.get(&id) {
            Some(Obj::Mutex { owner, .. }) => owner.is_none(),
            _ => true,
        },
        Op::RwAcquire(id, true) => match st.objs.get(&id) {
            Some(Obj::Rw {
                writer, readers, ..
            }) => writer.is_none() && readers.is_empty(),
            _ => true,
        },
        Op::RwAcquire(id, false) => match st.objs.get(&id) {
            Some(Obj::Rw { writer, .. }) => writer.is_none(),
            _ => true,
        },
        Op::OnceAcquire(id) => match st.objs.get(&id) {
            Some(Obj::Once { init_by, done, .. }) => *done || init_by.is_none(),
            _ => true,
        },
        Op::Join(t) => st.threads[t].finished,
        _ => true,
    }
}

/// Apply the semantics of `op` for thread `me`: update virtual
/// ownership, propagate vector clocks, and detect races. Returns the
/// reply; may set `st.failed`.
fn apply(st: &mut St, me: usize, op: Op) -> Reply {
    let St {
        threads,
        objs,
        relaxed_obs,
        failed,
        trace,
        ..
    } = st;
    threads[me].clock.tick(me);
    let mut race: Option<(&'static str, u64, usize)> = None;
    let reply = match op {
        Op::Start => Reply::Unit,
        Op::Spawn(child) => {
            let parent_clock = threads[me].clock.clone();
            threads[child].clock.join(&parent_clock);
            threads[child].clock.tick(child);
            threads[child].started = true;
            Reply::Unit
        }
        Op::Join(t) => {
            let target_clock = threads[t].clock.clone();
            threads[me].clock.join(&target_clock);
            Reply::Unit
        }
        Op::MutexLock(id) => {
            if let Obj::Mutex { owner, clock } = obj_for(objs, id, op) {
                *owner = Some(me);
                threads[me].clock.join(clock);
            }
            Reply::Unit
        }
        Op::MutexUnlock(id) => {
            if let Obj::Mutex { owner, clock } = obj_for(objs, id, op) {
                *owner = None;
                clock.join(&threads[me].clock);
            }
            Reply::Unit
        }
        Op::RwAcquire(id, write) | Op::RwTryAcquire(id, write) => {
            let is_try = matches!(op, Op::RwTryAcquire(..));
            if let Obj::Rw {
                writer,
                readers,
                wclock,
                rclock,
            } = obj_for(objs, id, op)
            {
                let free = if write {
                    writer.is_none() && readers.is_empty()
                } else {
                    writer.is_none()
                };
                if is_try && !free {
                    Reply::Acquired(false)
                } else {
                    if write {
                        *writer = Some(me);
                        threads[me].clock.join(wclock);
                        threads[me].clock.join(rclock);
                    } else {
                        readers.push(me);
                        threads[me].clock.join(wclock);
                    }
                    Reply::Acquired(true)
                }
            } else {
                Reply::Acquired(true)
            }
        }
        Op::RwRelease(id, write) => {
            if let Obj::Rw {
                writer,
                readers,
                wclock,
                rclock,
            } = obj_for(objs, id, op)
            {
                if write {
                    *writer = None;
                    wclock.join(&threads[me].clock);
                } else {
                    if let Some(pos) = readers.iter().position(|&r| r == me) {
                        readers.remove(pos);
                    }
                    rclock.join(&threads[me].clock);
                }
            }
            Reply::Unit
        }
        Op::OnceAcquire(id) => {
            if let Obj::Once {
                init_by,
                done,
                clock,
            } = obj_for(objs, id, op)
            {
                if *done {
                    threads[me].clock.join(clock);
                    Reply::Role(false)
                } else {
                    *init_by = Some(me);
                    Reply::Role(true)
                }
            } else {
                Reply::Role(true)
            }
        }
        Op::OnceComplete(id) => {
            if let Obj::Once {
                init_by,
                done,
                clock,
            } = obj_for(objs, id, op)
            {
                *init_by = None;
                *done = true;
                clock.join(&threads[me].clock);
            }
            Reply::Unit
        }
        Op::OnceAbort(id) => {
            if let Obj::Once { init_by, .. } = obj_for(objs, id, op) {
                *init_by = None;
            }
            Reply::Unit
        }
        Op::OnceGet(id) => {
            if let Obj::Once { done, clock, .. } = obj_for(objs, id, op) {
                if *done {
                    threads[me].clock.join(clock);
                }
            }
            Reply::Unit
        }
        Op::Atomic { id, kind, acq, rel } => {
            if let Obj::Atomic {
                last_store,
                rel: rel_clock,
            } = obj_for(objs, id, op)
            {
                if acq && kind != AtomKind::Store {
                    threads[me].clock.join(rel_clock);
                }
                if kind != AtomKind::Store {
                    if let Some((s, sc)) = last_store {
                        if *s != me && !sc.le(&threads[me].clock) {
                            // Observed another thread's store with no
                            // happens-before edge: legal for atomics,
                            // but recorded so tests can assert which
                            // paths *intend* relaxed observations.
                            *relaxed_obs += 1;
                        }
                    }
                }
                if kind != AtomKind::Load {
                    if rel {
                        rel_clock.join(&threads[me].clock);
                    }
                    *last_store = Some((me, threads[me].clock.clone()));
                }
            }
            Reply::Unit
        }
        Op::RaceRead(id) => {
            if let Obj::Race { last_write, reads } = obj_for(objs, id, op) {
                if let Some((w, wc)) = last_write {
                    if *w != me && !wc.le(&threads[me].clock) {
                        race = Some(("write-read", id, *w));
                    }
                }
                if let Some(entry) = reads.iter_mut().find(|(r, _)| *r == me) {
                    entry.1 = threads[me].clock.clone();
                } else {
                    reads.push((me, threads[me].clock.clone()));
                }
            }
            Reply::Unit
        }
        Op::RaceWrite(id) => {
            if let Obj::Race { last_write, reads } = obj_for(objs, id, op) {
                if let Some((w, wc)) = last_write {
                    if *w != me && !wc.le(&threads[me].clock) {
                        race = Some(("write-write", id, *w));
                    }
                }
                for (r, rc) in reads.iter() {
                    if race.is_none() && *r != me && !rc.le(&threads[me].clock) {
                        race = Some(("read-write", id, *r));
                    }
                }
                *last_write = Some((me, threads[me].clock.clone()));
                // Reads ordered before this write can no longer race
                // with anything that races with us first.
                reads.clear();
            }
            Reply::Unit
        }
    };
    if let Some((kind, object, other)) = race {
        if failed.is_none() {
            *failed = Some(Failure::Race {
                kind,
                object,
                threads: (other, me),
                trace: trace.clone(),
            });
        }
    }
    reply
}

/// Record of one decision point, as seen by the controller.
struct DecisionRec {
    allowed: Vec<usize>,
    chosen: usize,
    prev: Option<usize>,
    prev_enabled: bool,
    preemptions_before: usize,
}

struct ExecOutcome {
    decisions: Vec<DecisionRec>,
    failure: Option<Failure>,
    nondet: bool,
    steps: u64,
    relaxed_obs: u64,
}

/// Run one execution, replaying `prefix` at decision points and taking
/// defaults beyond it.
fn run_one(config: &Config, body: &Arc<dyn Fn() + Send + Sync>, prefix: &[usize]) -> ExecOutcome {
    let exec = Arc::new(Exec {
        st: Mutex::new(St {
            threads: vec![Th::new()],
            objs: HashMap::new(),
            running: None,
            prev: None,
            failed: None,
            draining: false,
            steps: 0,
            trace: Vec::new(),
            relaxed_obs: 0,
        }),
        cv: Condvar::new(),
        os: Mutex::new(Vec::new()),
    });
    {
        let mut st = lock_st(&exec);
        st.threads[0].started = true;
    }
    let root_body = Arc::clone(body);
    let root_result: Arc<Mutex<Option<()>>> = Arc::new(Mutex::new(None));
    let exec2 = Arc::clone(&exec);
    let root_result2 = Arc::clone(&root_result);
    let root = match std::thread::Builder::new()
        .name("ssd-check-t0".to_owned())
        .spawn(move || thread_body(exec2, 0, move || root_body(), &root_result2))
    {
        Ok(h) => h,
        Err(e) => panic!("failed to spawn model root thread: {e}"),
    };

    let mut decisions: Vec<DecisionRec> = Vec::new();
    let mut preemptions = 0usize;
    let mut nondet = false;
    let mut st = lock_st(&exec);
    loop {
        if st.draining {
            if st.threads.iter().all(|t| t.finished) {
                break;
            }
            st = wait_st(&exec, st);
            continue;
        }
        let quiescent =
            st.running.is_none() && st.threads.iter().all(|t| t.finished || t.next.is_some());
        if !quiescent {
            st = wait_st(&exec, st);
            continue;
        }
        if st.threads.iter().all(|t| t.finished) {
            break;
        }
        if st.steps >= config.max_steps {
            let trace = st.trace.clone();
            st.failed = Some(Failure::StepLimit {
                steps: st.steps,
                trace,
            });
            st.draining = true;
            exec.cv.notify_all();
            continue;
        }
        let ready: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.finished && t.next.is_some())
            .map(|(i, _)| i)
            .collect();
        let enabled_set: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|&i| match st.threads[i].next {
                Some(op) => enabled(&st, i, op),
                None => false,
            })
            .collect();
        if enabled_set.is_empty() {
            let waiting = ready
                .iter()
                .map(|&i| (i, format!("{:?}", st.threads[i].next)))
                .collect();
            let trace = st.trace.clone();
            st.failed = Some(Failure::Deadlock { waiting, trace });
            st.draining = true;
            exec.cv.notify_all();
            continue;
        }
        let prev = st.prev;
        let prev_enabled = prev.is_some_and(|p| enabled_set.contains(&p));
        let allowed: Vec<usize> = if preemptions >= config.preemption_bound && prev_enabled {
            match prev {
                Some(p) => vec![p],
                None => enabled_set.clone(),
            }
        } else {
            enabled_set.clone()
        };
        let chosen = if allowed.len() == 1 {
            allowed[0]
        } else {
            let di = decisions.len();
            let default = match prev {
                Some(p) if allowed.contains(&p) => p,
                _ => allowed[0],
            };
            let c = if di < prefix.len() {
                if allowed.contains(&prefix[di]) {
                    prefix[di]
                } else {
                    nondet = true;
                    default
                }
            } else {
                default
            };
            decisions.push(DecisionRec {
                allowed: allowed.clone(),
                chosen: c,
                prev,
                prev_enabled,
                preemptions_before: preemptions,
            });
            c
        };
        if prev_enabled && prev != Some(chosen) {
            preemptions += 1;
        }
        let op = match st.threads[chosen].next.take() {
            Some(op) => op,
            None => unreachable!("ready thread has a pending op"),
        };
        st.push_trace(format!("t{chosen} {op:?}"));
        let reply = apply(&mut st, chosen, op);
        st.steps += 1;
        if st.failed.is_some() {
            st.draining = true;
            exec.cv.notify_all();
            continue;
        }
        st.threads[chosen].reply = reply;
        st.threads[chosen].granted = true;
        st.running = Some(chosen);
        st.prev = Some(chosen);
        exec.cv.notify_all();
    }
    let failure = st.failed.take();
    let steps = st.steps;
    let relaxed_obs = st.relaxed_obs;
    drop(st);
    let _ = root.join();
    let handles = std::mem::take(&mut *exec.os.lock().unwrap_or_else(|e| e.into_inner()));
    for h in handles {
        let _ = h.join();
    }
    ExecOutcome {
        decisions,
        failure,
        nondet,
        steps,
        relaxed_obs,
    }
}

/// One frame of the DFS stack: a decision point plus which alternatives
/// have been tried at the current prefix.
struct Frame {
    allowed: Vec<usize>,
    tried: Vec<usize>,
    current: usize,
    prev: Option<usize>,
    prev_enabled: bool,
    preemptions_before: usize,
}

impl Frame {
    fn from_rec(d: &DecisionRec) -> Frame {
        Frame {
            allowed: d.allowed.clone(),
            tried: vec![d.chosen],
            current: d.chosen,
            prev: d.prev,
            prev_enabled: d.prev_enabled,
            preemptions_before: d.preemptions_before,
        }
    }

    /// Would picking `a` here keep the execution inside the bound?
    fn fits_bound(&self, a: usize, bound: usize) -> bool {
        let cost = usize::from(self.prev_enabled && self.prev != Some(a));
        self.preemptions_before + cost <= bound
    }
}

/// DFS over schedules: run, extend the stack with fresh decision
/// points, then backtrack to the deepest point with an untried
/// in-bound alternative.
pub(crate) fn explore(name: &str, config: &Config, body: Arc<dyn Fn() + Send + Sync>) -> Report {
    let mut report = Report {
        name: name.to_owned(),
        schedules: 0,
        failure: None,
        nondeterministic: false,
        capped: false,
        relaxed_obs: 0,
        max_steps: 0,
    };
    let mut stack: Vec<Frame> = Vec::new();
    loop {
        let prefix: Vec<usize> = stack.iter().map(|f| f.current).collect();
        let out = run_one(config, &body, &prefix);
        report.schedules += 1;
        report.relaxed_obs += out.relaxed_obs;
        report.max_steps = report.max_steps.max(out.steps);
        if out.nondet
            || out.decisions.len() < stack.len()
            || stack
                .iter()
                .zip(&out.decisions)
                .any(|(f, d)| f.allowed != d.allowed || f.current != d.chosen)
        {
            report.nondeterministic = true;
            break;
        }
        if out.failure.is_some() {
            report.failure = out.failure;
            break;
        }
        for d in &out.decisions[stack.len()..] {
            stack.push(Frame::from_rec(d));
        }
        let advanced = loop {
            match stack.last_mut() {
                None => break false,
                Some(top) => {
                    let next = top.allowed.iter().copied().find(|a| {
                        !top.tried.contains(a) && top.fits_bound(*a, config.preemption_bound)
                    });
                    match next {
                        Some(a) => {
                            top.tried.push(a);
                            top.current = a;
                            break true;
                        }
                        None => {
                            stack.pop();
                        }
                    }
                }
            }
        };
        if !advanced {
            break;
        }
        if report.schedules >= config.max_schedules {
            report.capped = true;
            break;
        }
    }
    report
}
