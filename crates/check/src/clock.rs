//! Vector clocks: the happens-before half of the race detector.
//!
//! Each logical thread carries a [`VClock`]; every synchronization object
//! the scheduler models carries one or more clocks it joins with. Two
//! accesses are *concurrent* (and, on a plain memory location, a data
//! race) exactly when neither clock component-wise dominates the other at
//! the time of the second access.

/// A vector clock over logical thread indices. Grows on demand; absent
/// components read as 0.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    ticks: Vec<u64>,
}

impl VClock {
    /// The zero clock (happens before everything).
    pub fn new() -> VClock {
        VClock::default()
    }

    /// This thread's own component, advanced at every scheduled step.
    pub fn tick(&mut self, thread: usize) {
        if self.ticks.len() <= thread {
            self.ticks.resize(thread + 1, 0);
        }
        self.ticks[thread] += 1;
    }

    /// Component for `thread` (0 when never ticked).
    pub fn get(&self, thread: usize) -> u64 {
        self.ticks.get(thread).copied().unwrap_or(0)
    }

    /// Component-wise maximum: `self` absorbs everything `other` has
    /// observed. This is the transfer performed by every release→acquire
    /// edge the scheduler models.
    pub fn join(&mut self, other: &VClock) {
        if self.ticks.len() < other.ticks.len() {
            self.ticks.resize(other.ticks.len(), 0);
        }
        for (mine, theirs) in self.ticks.iter_mut().zip(&other.ticks) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// `self ≤ other` component-wise: everything up to `self` happened
    /// before the moment `other` describes.
    pub fn le(&self, other: &VClock) -> bool {
        self.ticks
            .iter()
            .enumerate()
            .all(|(t, &v)| v <= other.get(t))
    }

    /// Neither clock dominates: the two moments are concurrent.
    pub fn concurrent_with(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_orders_previously_concurrent_clocks() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent_with(&b));
        b.join(&a);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent_with(&b));
    }

    #[test]
    fn zero_clock_happens_before_everything() {
        let zero = VClock::new();
        let mut t = VClock::new();
        t.tick(3);
        assert!(zero.le(&t));
        assert!(zero.le(&zero));
    }
}
