//! `ssd-check`: a deterministic concurrency model checker for the `ssd`
//! workspace, in the loom/shuttle family but with zero dependencies.
//!
//! A scenario is a closure using [`thread::spawn`]/[`thread::JoinHandle`]
//! and any code built on `ssd_base::sync`. [`check`] runs the closure
//! under a controlled scheduler that serializes the logical threads and
//! explores distinct interleavings by DFS over scheduling decisions,
//! bounded by a *preemption bound* (how many times the scheduler may
//! switch away from a thread that could have kept running — empirically,
//! almost all real concurrency bugs need ≤ 2 preemptions). A
//! vector-clock detector reports genuine data races on [`RaceCell`]
//! plain-memory cells and counts *relaxed observations* (an atomic load
//! observing another thread's store with no happens-before edge) so
//! tests can assert which paths intend them.
//!
//! Two modes:
//!
//! * **plain build** — `ssd_base::sync` is uninstrumented; only
//!   check-level operations (spawn/join, `RaceCell`) are schedule
//!   points. Self-tests of the checker run this way under ordinary
//!   `cargo test`.
//! * **`RUSTFLAGS="--cfg ssd_model_check"`** — every shim
//!   lock/atomic/once operation is a schedule point, so production
//!   structures (ShardedMap, AutomataCache, Session memo publishes,
//!   obs registry/windows) are explored operation-by-operation.
//!
//! Every [`check`] run prints one machine-greppable line:
//! `SSD_CHECK name=... schedules=N ...` — CI fails if the schedule
//! count degenerates (see `.github/workflows/ci.yml`).

#![deny(missing_docs)]

mod clock;
#[cfg(ssd_model_check)]
mod glue;
mod sched;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use clock::VClock;

/// Exploration limits for one [`check_with`] call.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of preemptive context switches per execution
    /// (switching away from a thread that could have continued).
    pub preemption_bound: usize,
    /// Cap on explored schedules; exploration stops (reported via
    /// [`Report::capped`]) when it is reached.
    pub max_schedules: u64,
    /// Cap on scheduled operations in one execution; exceeding it is a
    /// [`Failure::StepLimit`] (a runaway scenario, not a pass).
    pub max_steps: u64,
}

impl Default for Config {
    /// Quick-mode defaults; `SSD_CHECK_FULL=1` raises the schedule cap
    /// for the nightly CI path and `SSD_CHECK_MAX_SCHEDULES=<n>`
    /// overrides it exactly.
    fn default() -> Config {
        let full = std::env::var_os("SSD_CHECK_FULL").is_some_and(|v| v == "1");
        let max_schedules = std::env::var("SSD_CHECK_MAX_SCHEDULES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if full { 1_000_000 } else { 4096 });
        Config {
            preemption_bound: 2,
            max_schedules,
            max_steps: 1_000_000,
        }
    }
}

impl Config {
    /// Default config with a different schedule cap (for heavyweight
    /// scenarios that meter their own budget).
    pub fn with_max_schedules(max_schedules: u64) -> Config {
        Config {
            max_schedules,
            ..Config::default()
        }
    }
}

/// Why an exploration stopped with a counterexample.
#[derive(Clone, Debug)]
pub enum Failure {
    /// Two plain-memory accesses with no happens-before edge.
    Race {
        /// `"write-write"`, `"write-read"`, or `"read-write"`.
        kind: &'static str,
        /// Shim object id of the racing location.
        object: u64,
        /// The two logical threads involved (first accessor, second).
        threads: (usize, usize),
        /// Recent scheduled operations, oldest first.
        trace: Vec<String>,
    },
    /// No runnable thread while some are still blocked.
    Deadlock {
        /// Blocked threads and the ops they were waiting on.
        waiting: Vec<(usize, String)>,
        /// Recent scheduled operations, oldest first.
        trace: Vec<String>,
    },
    /// A logical thread panicked (assertion failure in the scenario).
    Panic {
        /// The panicking thread.
        thread: usize,
        /// The panic message.
        message: String,
        /// Recent scheduled operations, oldest first.
        trace: Vec<String>,
    },
    /// One execution exceeded [`Config::max_steps`].
    StepLimit {
        /// Steps taken when the limit tripped.
        steps: u64,
        /// Recent scheduled operations, oldest first.
        trace: Vec<String>,
    },
}

impl Failure {
    fn trace(&self) -> &[String] {
        match self {
            Failure::Race { trace, .. }
            | Failure::Deadlock { trace, .. }
            | Failure::Panic { trace, .. }
            | Failure::StepLimit { trace, .. } => trace,
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Race {
                kind,
                object,
                threads,
                ..
            } => write!(
                f,
                "data race ({kind}) on object #{object} between t{} and t{}",
                threads.0, threads.1
            )?,
            Failure::Deadlock { waiting, .. } => {
                write!(f, "deadlock; blocked: ")?;
                for (i, (t, op)) in waiting.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "t{t} on {op}")?;
                }
            }
            Failure::Panic {
                thread, message, ..
            } => write!(f, "t{thread} panicked: {message}")?,
            Failure::StepLimit { steps, .. } => {
                write!(f, "execution exceeded the step limit ({steps} steps)")?
            }
        }
        if !self.trace().is_empty() {
            write!(f, "\nlast scheduled ops:")?;
            for line in self.trace() {
                write!(f, "\n  {line}")?;
            }
        }
        Ok(())
    }
}

/// Outcome of one [`check`] exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Scenario name (as passed to [`check`]).
    pub name: String,
    /// Distinct schedules executed.
    pub schedules: u64,
    /// The counterexample, if any schedule failed.
    pub failure: Option<Failure>,
    /// A replayed decision prefix diverged — the scenario's operation
    /// sequence depends on something outside the model (time, map
    /// iteration order feeding back into control flow, ...). Results
    /// are untrustworthy; fix the scenario.
    pub nondeterministic: bool,
    /// Exploration stopped at [`Config::max_schedules`] before
    /// exhausting the bounded schedule space.
    pub capped: bool,
    /// Total relaxed observations (atomic load of another thread's
    /// store with no happens-before edge) across all schedules.
    pub relaxed_obs: u64,
    /// Longest execution, in scheduled operations.
    pub max_steps: u64,
}

impl Report {
    /// True when every explored schedule passed deterministically.
    pub fn is_ok(&self) -> bool {
        self.failure.is_none() && !self.nondeterministic
    }

    /// Panics with the counterexample if the exploration failed.
    pub fn assert_ok(&self) {
        if let Some(failure) = &self.failure {
            panic!(
                "ssd-check '{}' failed after {} schedules: {failure}",
                self.name, self.schedules
            );
        }
        if self.nondeterministic {
            panic!(
                "ssd-check '{}' is nondeterministic after {} schedules",
                self.name, self.schedules
            );
        }
    }
}

/// Process-wide count of schedules explored by every [`check`] call, so
/// an aggregate test can assert the suite's total coverage.
static EXPLORED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Total schedules explored by all [`check`] calls in this process.
pub fn explored_total() -> u64 {
    EXPLORED_TOTAL.load(Ordering::Relaxed)
}

/// Explore `scenario` under [`Config::default`].
pub fn check(name: &str, scenario: impl Fn() + Send + Sync + 'static) -> Report {
    check_with(name, Config::default(), scenario)
}

/// Explore `scenario` under an explicit [`Config`]. The closure runs
/// once per schedule, so it must set up its own state each time and be
/// deterministic given the schedule.
pub fn check_with(
    name: &str,
    config: Config,
    scenario: impl Fn() + Send + Sync + 'static,
) -> Report {
    #[cfg(ssd_model_check)]
    glue::ensure_installed();
    let report = sched::explore(name, &config, Arc::new(scenario));
    EXPLORED_TOTAL.fetch_add(report.schedules, Ordering::Relaxed);
    let result = if let Some(f) = &report.failure {
        match f {
            Failure::Race { .. } => "race",
            Failure::Deadlock { .. } => "deadlock",
            Failure::Panic { .. } => "panic",
            Failure::StepLimit { .. } => "step-limit",
        }
    } else if report.nondeterministic {
        "nondeterministic"
    } else {
        "ok"
    };
    println!(
        "SSD_CHECK name={} schedules={} bound={} capped={} relaxed_obs={} max_steps={} result={}",
        report.name,
        report.schedules,
        config.preemption_bound,
        report.capped,
        report.relaxed_obs,
        report.max_steps,
        result
    );
    report
}

/// A plain (non-atomic) memory cell the race detector watches: any two
/// accesses from different threads without a happens-before edge — at
/// least one a write — fail the exploration. Use it inside scenarios to
/// model the *data* a lock-free protocol is supposed to protect.
///
/// Storage is internally synchronized (so a detected logical race never
/// becomes real undefined behavior); the *model* treats every access as
/// an unsynchronized plain-memory operation.
pub struct RaceCell<T> {
    id: u64,
    v: std::sync::Mutex<T>,
}

impl<T: Copy> RaceCell<T> {
    /// A new cell holding `v`.
    pub fn new(v: T) -> RaceCell<T> {
        RaceCell {
            id: sched::next_obj_id(),
            v: std::sync::Mutex::new(v),
        }
    }

    /// Plain read.
    pub fn get(&self) -> T {
        sched::request(sched::Op::RaceRead(self.id));
        *self.v.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Plain write.
    pub fn set(&self, v: T) {
        sched::request(sched::Op::RaceWrite(self.id));
        *self.v.lock().unwrap_or_else(|e| e.into_inner()) = v;
    }

    /// Plain read-modify-write (a single *write* access in the model —
    /// the classic lost-update shape when two threads do it at once).
    pub fn update(&self, f: impl FnOnce(T) -> T) {
        sched::request(sched::Op::RaceWrite(self.id));
        let mut g = self.v.lock().unwrap_or_else(|e| e.into_inner());
        *g = f(*g);
    }
}

pub mod thread {
    //! Scenario-side threading: like `std::thread`, but spawns logical
    //! threads under the model scheduler when called inside a
    //! [`crate::check`] scenario (and falls back to real threads
    //! outside one).

    use std::sync::{Arc, Mutex};

    use crate::sched;

    enum Inner<T> {
        Model {
            exec: Arc<sched::Exec>,
            target: usize,
            result: Arc<Mutex<Option<T>>>,
        },
        Os(std::thread::JoinHandle<T>),
    }

    /// Handle to a spawned scenario thread.
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        pub(crate) fn from_model(
            exec: Arc<sched::Exec>,
            target: usize,
            result: Arc<Mutex<Option<T>>>,
        ) -> JoinHandle<T> {
            JoinHandle(Inner::Model {
                exec,
                target,
                result,
            })
        }

        pub(crate) fn from_os(h: std::thread::JoinHandle<T>) -> JoinHandle<T> {
            JoinHandle(Inner::Os(h))
        }

        /// Wait for the thread and return its value. Unlike std this
        /// propagates a child panic by panicking (the model run is
        /// already failed at that point).
        pub fn join(self) -> T {
            match self.0 {
                Inner::Model {
                    exec,
                    target,
                    result,
                } => sched::join_thread(&exec, target, &result),
                Inner::Os(h) => match h.join() {
                    Ok(v) => v,
                    Err(_) => panic!("scenario thread panicked"),
                },
            }
        }
    }

    /// Spawn a logical thread in the current model execution (or a real
    /// thread outside one).
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        sched::spawn_thread(f)
    }
}
