//! The "restore-race twins", ported from `ssd-bench`'s threaded stress
//! tests into model-checked scenarios: instead of hammering four OS
//! threads for thousands of passes and hoping the scheduler cooperates,
//! the checker *enumerates* interleavings of a reader racing a snapshot
//! restore — including the ones a timing-based test essentially never
//! hits (a hydration insert landing between a reader's probe and its
//! publish).
//!
//! Invariants (identical to the originals): a verdict computed while a
//! restore is in flight equals the cold truth; a second restore is an
//! idempotent no-op; a corrupt snapshot never poisons a verdict.

use ssd_bench::workload;
use ssd_check::{check_with, thread, Config};
use ssd_core::Session;
use std::path::PathBuf;
use std::sync::Arc;

/// Cold truth plus a warmed snapshot on disk for one small workload.
fn fixture(
    file: &str,
) -> (
    PathBuf,
    Arc<ssd_schema::Schema>,
    Arc<ssd_query::Query>,
    bool,
) {
    let (schema, _tg, query) = workload(1100, 6, 1, false, false);
    let warm = Session::new();
    let cold = warm.satisfiable(&query, &schema).unwrap().satisfiable;
    let dir = std::env::temp_dir().join(format!("ssd-check-restore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(file);
    warm.save_snapshot(&path, &[&schema]).unwrap();
    (path, Arc::new(schema), Arc::new(query), cold)
}

/// Twin of `queries_racing_a_snapshot_restore_never_see_partial_state`:
/// a reader's verdicts before/during/after the hydration equal the cold
/// truth in every interleaving, and a second restore rejects nothing
/// (insert-if-absent drops duplicates instead of replacing entries out
/// from under the reader).
#[test]
fn restore_racing_queries_never_exposes_partial_state() {
    let (path, schema, query, cold) = fixture("race.snap");
    let report = {
        let path = path.clone();
        check_with(
            "restore.vs-readers",
            Config::with_max_schedules(12),
            move || {
                let sess = Arc::new(Session::new());
                let (s2, sch2, q2) = (Arc::clone(&sess), Arc::clone(&schema), Arc::clone(&query));
                let reader = thread::spawn(move || {
                    for _ in 0..2 {
                        assert_eq!(
                            s2.satisfiable(&q2, &sch2).unwrap().satisfiable,
                            cold,
                            "verdict diverged while racing restore"
                        );
                    }
                });
                let out = sess.load_snapshot(&path, &[&schema]);
                let again = sess.load_snapshot(&path, &[&schema]);
                reader.join();
                assert_eq!(out.sections_rejected, 0, "{out}");
                assert!(out.any_loaded(), "{out}");
                assert_eq!(again.sections_rejected, 0, "idempotent re-restore: {again}");
                // The session is warm now: the corpus answers from the
                // hydrated caches without new memo misses.
                let misses = sess.stats().feas_memo_table.misses;
                assert_eq!(sess.satisfiable(&query, &schema).unwrap().satisfiable, cold);
                assert_eq!(sess.stats().feas_memo_table.misses, misses);
            },
        )
    };
    std::fs::remove_file(&path).ok();
    report.assert_ok();
}

/// Twin of `restore_racing_a_corrupt_snapshot_stays_cold_correct`: a
/// snapshot with a flipped payload byte is rejected at validation, and a
/// reader racing the failed hydration still computes the cold truth.
#[test]
fn corrupt_restore_stays_cold_and_correct() {
    let (path, schema, query, cold) = fixture("race-corrupt.snap");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let report = {
        let path = path.clone();
        check_with(
            "restore.vs-corrupt",
            Config::with_max_schedules(12),
            move || {
                let sess = Arc::new(Session::new());
                let (s2, sch2, q2) = (Arc::clone(&sess), Arc::clone(&schema), Arc::clone(&query));
                let reader = thread::spawn(move || {
                    assert_eq!(
                        s2.satisfiable(&q2, &sch2).unwrap().satisfiable,
                        cold,
                        "corrupt restore poisoned a verdict"
                    );
                });
                let out = sess.load_snapshot(&path, &[&schema]);
                reader.join();
                assert!(
                    out.sections_rejected >= 1 || !out.any_loaded(),
                    "corruption slipped through validation: {out}"
                );
                assert_eq!(sess.satisfiable(&query, &schema).unwrap().satisfiable, cold);
            },
        )
    };
    std::fs::remove_file(&path).ok();
    report.assert_ok();
}
