//! Model checks of the session memo layer: racing `satisfiable` calls
//! publish one memo entry, and the pathological entry-cap-0 eviction
//! policy never costs a caller correctness — only recomputation.
//!
//! Scenarios here drive the *real* session code (type-graph build, feas
//! analysis, automata cache) through the controlled scheduler, so the
//! schedule caps are small: each execution replays the full inference
//! pipeline one synchronization op at a time.

use ssd_bench::workload;
use ssd_check::{check_with, thread, Config};
use ssd_core::{Session, SessionLimits};
use std::sync::Arc;

/// Two threads asking the same question race to publish one memo entry:
/// `insert_if_absent` keeps the first value, the loser adopts it, and
/// the traffic counters account for exactly the two lookups.
#[test]
fn racing_feas_lookups_publish_one_memo() {
    let (schema, _tg, query) = workload(1100, 6, 1, false, false);
    let cold = Session::new()
        .satisfiable(&query, &schema)
        .unwrap()
        .satisfiable;
    let (schema, query) = (Arc::new(schema), Arc::new(query));
    let report = check_with(
        "session.memo-once",
        Config::with_max_schedules(16),
        move || {
            let sess = Arc::new(Session::new());
            let (s2, sch2, q2) = (Arc::clone(&sess), Arc::clone(&schema), Arc::clone(&query));
            let t = thread::spawn(move || s2.satisfiable(&q2, &sch2).unwrap().satisfiable);
            let mine = sess.satisfiable(&query, &schema).unwrap().satisfiable;
            let theirs = t.join();
            assert_eq!(mine, cold, "racing verdict diverged from cold truth");
            assert_eq!(theirs, cold, "racing verdict diverged from cold truth");
            let st = sess.stats();
            assert_eq!(st.feas_memos, 1, "one key, one published entry");
            assert_eq!(
                st.feas_memo_table.hits + st.feas_memo_table.misses,
                2,
                "every lookup is either a hit or a miss: {:?}",
                st.feas_memo_table
            );
            assert!(st.feas_memo_table.misses >= 1, "someone had to compute");
        },
    );
    report.assert_ok();
}

/// The eviction invariant, at the session level: with a feas-memo entry
/// cap of zero, *every* insert is immediately evicted again — yet both
/// racing callers still return the cold-truth verdict, because the value
/// they hold is an `Arc` the sweep cannot invalidate. A cap of zero also
/// keeps the hard-cap pass deterministic (keep = len/2 = 0 drops every
/// entry, so no iteration-order-dependent survivor choice exists for the
/// replay engine to trip on).
#[test]
fn cap_zero_eviction_costs_recomputation_never_correctness() {
    let (schema, _tg, query) = workload(1100, 6, 1, false, false);
    let cold = Session::new()
        .satisfiable(&query, &schema)
        .unwrap()
        .satisfiable;
    let (schema, query) = (Arc::new(schema), Arc::new(query));
    let report = check_with(
        "session.evict-vs-reader",
        Config::with_max_schedules(16),
        move || {
            let sess = Arc::new(Session::with_limits(
                SessionLimits::unlimited().max_feas_memo_entries(0),
            ));
            let (s2, sch2, q2) = (Arc::clone(&sess), Arc::clone(&schema), Arc::clone(&query));
            let t = thread::spawn(move || s2.satisfiable(&q2, &sch2).unwrap().satisfiable);
            let mine = sess.satisfiable(&query, &schema).unwrap().satisfiable;
            let theirs = t.join();
            assert_eq!(mine, cold, "eviction corrupted a held result");
            assert_eq!(theirs, cold, "eviction corrupted a held result");
            let st = sess.stats();
            assert_eq!(st.feas_memos, 0, "cap 0: nothing survives the sweep");
            assert!(st.evicted >= 1, "at least one insert was swept");
            assert_eq!(
                st.feas_memo_table.hits + st.feas_memo_table.misses,
                2,
                "lookups still fully accounted: {:?}",
                st.feas_memo_table
            );
        },
    );
    report.assert_ok();
}
