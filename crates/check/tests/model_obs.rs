//! Model checks of the telemetry layer: the registry's lock-free slot
//! claim publishes every racing increment, and a windowed counter's
//! epoch-boundary race loses at most the in-flight increments from the
//! *window* — never from the lifetime total (the precision contract
//! documented in `ssd_obs::window`).

use ssd_check::{check_with, thread, Config};
use ssd_obs::window::{WindowedCounter, RING};
use ssd_obs::{MetricsRegistry, Recorder};
use std::sync::Arc;

/// Two threads racing to create-and-bump the same (previously unseen)
/// counter: the probe table's `OnceLock` slot claim elects one cell and
/// the loser re-checks, so no increment is ever dropped into a shadowed
/// duplicate cell.
#[test]
fn registry_slot_claim_drops_no_increment() {
    let report = check_with(
        "obs.slot-one-winner",
        Config::with_max_schedules(512),
        || {
            let reg = Arc::new(MetricsRegistry::new());
            let r2 = Arc::clone(&reg);
            let t = thread::spawn(move || r2.add("model.slot.counter", 2));
            reg.add("model.slot.counter", 1);
            t.join();
            assert_eq!(
                reg.counter_total("model.slot.counter"),
                3,
                "both racing increments landed in one cell"
            );
        },
    );
    report.assert_ok();
}

/// The windowed-counter precision contract, verified over every
/// interleaving: two increments racing a slot re-claim at an epoch
/// boundary keep the lifetime total exact, and the window retains at
/// least the claim winner's increment — losing at most the one that was
/// in flight across the tag-swap/zero gap.
#[test]
fn window_rollover_loses_at_most_inflight_increments() {
    let report = check_with(
        "obs.window-boundary",
        Config::with_max_schedules(512),
        || {
            let c = Arc::new(WindowedCounter::new());
            // Park 5 in the slot that epoch RING (= 8) will re-claim.
            c.add(5, 0);
            let c2 = Arc::clone(&c);
            let boundary = RING as u64;
            let t = thread::spawn(move || c2.add(1, boundary));
            c.add(1, boundary);
            t.join();
            assert_eq!(c.total(), 7, "the lifetime total is exact");
            let w = c.window_total(boundary, 1);
            assert!(
                (1..=2).contains(&w),
                "window kept {w} of 2 boundary increments; \
                 the claim winner's own increment can never be lost"
            );
        },
    );
    report.assert_ok();
}
