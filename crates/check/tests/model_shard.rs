//! Model checks of the production `ShardedMap` — the lock-sharded table
//! under the session memo caches and the automata cache.
//!
//! Under `--cfg ssd_model_check` every shard-lock acquire/release and
//! contention counter runs through the controlled scheduler, so these
//! tests enumerate real interleavings (and would report any deadlock or
//! race on the map's own state). In a plain build the same tests still
//! run — serialized — as cheap smoke tests.

use ssd_automata::ShardedMap;
use ssd_check::{check_with, thread, Config};
use std::sync::Arc;

/// Two racing `insert_if_absent` calls on one key: exactly one value is
/// published, and *both* callers observe that winner (never their own
/// losing candidate).
#[test]
fn insert_if_absent_has_one_winner() {
    let report = check_with(
        "shard.insert-one-winner",
        Config::with_max_schedules(512),
        || {
            let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
            let m2 = Arc::clone(&map);
            let t = thread::spawn(move || m2.insert_if_absent(7, 200));
            let mine = map.insert_if_absent(7, 100);
            let theirs = t.join();
            let settled = map.get(&7).expect("some insert published");
            assert_eq!(mine, settled, "loser adopted the winner's value");
            assert_eq!(theirs, settled, "both callers agree");
            assert!(settled == 100 || settled == 200);
            assert_eq!(map.len(), 1, "one key, one entry");
        },
    );
    report.assert_ok();
    #[cfg(ssd_model_check)]
    assert!(
        report.schedules > 1,
        "instrumented locks must interleave: {} schedules",
        report.schedules
    );
}

/// `get_or_insert_with` under contention computes the value at most once
/// per key: the double-checked write path re-probes under the exclusive
/// shard lock before running the closure.
#[test]
fn get_or_insert_with_computes_once() {
    let report = check_with(
        "shard.compute-once",
        Config::with_max_schedules(512),
        || {
            let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
            // Plain std counter on purpose: closure executions are already
            // serialized by the shard lock, we only count them.
            let runs = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let (m2, r2) = (Arc::clone(&map), Arc::clone(&runs));
            let t = thread::spawn(move || {
                m2.get_or_insert_with(9, || {
                    r2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    42
                })
            });
            let mine = map.get_or_insert_with(9, || {
                runs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                42
            });
            let theirs = t.join();
            assert_eq!(mine, 42);
            assert_eq!(theirs, 42);
            assert_eq!(
                runs.load(std::sync::atomic::Ordering::Relaxed),
                1,
                "the expensive constructor ran exactly once"
            );
        },
    );
    report.assert_ok();
}

/// Satellite 6: `len_by_shard` (the occupancy gauge feed) takes the 16
/// shard locks one at a time, never all at once. The snapshot it returns
/// is *not* a point-in-time cut — but on a grow-only map it is bounded
/// below by what had been inserted before the sweep started and above by
/// what exists when it finishes, which is exactly what a gauge needs.
/// The checker also proves the sweep cannot deadlock against writers
/// (locks are acquired strictly one-at-a-time in index order).
#[test]
fn len_by_shard_gauge_is_bounded_mid_flight() {
    let report = check_with(
        "shard.gauge-bounds",
        Config::with_max_schedules(512),
        || {
            let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
            let (m1, m2) = (Arc::clone(&map), Arc::clone(&map));
            let w1 = thread::spawn(move || m1.insert_if_absent(1, 1));
            let w2 = thread::spawn(move || m2.insert_if_absent(2, 2));
            // Gauge sweep racing both writers: any value 0..=2 is a valid
            // observation, anything else means the sweep saw phantom or
            // lost entries.
            let mid: usize = map.len_by_shard().iter().sum();
            assert!(mid <= 2, "gauge sweep saw {mid} phantom entries");
            w1.join();
            w2.join();
            let settled: usize = map.len_by_shard().iter().sum();
            assert_eq!(settled, 2, "post-join sweep is exact");
            assert_eq!(map.len(), 2);
        },
    );
    report.assert_ok();
}

/// Racing `write_with` mutations on one key: no lost update, and the
/// contention counter only ever counts acquisitions that actually found
/// the lock held (it can never exceed the number of racing lock ops).
#[test]
fn write_with_never_loses_an_update() {
    let report = check_with(
        "shard.rmw-no-lost-update",
        Config::with_max_schedules(512),
        || {
            let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
            let m2 = Arc::clone(&map);
            let t = thread::spawn(move || m2.write_with(5, |v| *v += 1));
            map.write_with(5, |v| *v += 1);
            t.join();
            assert_eq!(map.get(&5), Some(2), "both increments landed");
            // Two exclusive ops plus this `get` can block each other at
            // most once each.
            assert!(map.contended() <= 3, "over-counted: {}", map.contended());
        },
    );
    report.assert_ok();
}

/// The eviction invariant from the issue: a sweep (`retain`) that drops
/// an entry never invalidates the `Arc` a concurrent reader already
/// cloned out of the map. Eviction only unlinks; the value lives until
/// its last holder drops it.
#[test]
fn eviction_never_invalidates_a_held_entry() {
    let report = check_with(
        "shard.evict-vs-reader",
        Config::with_max_schedules(512),
        || {
            let map: Arc<ShardedMap<u64, Arc<Vec<u64>>>> = Arc::new(ShardedMap::new());
            map.insert_if_absent(1, Arc::new(vec![10, 20, 30]));
            let m2 = Arc::clone(&map);
            let reader = thread::spawn(move || {
                // Whether this lands before or after the eviction, the
                // clone (if any) must stay fully readable.
                if let Some(held) = m2.get(&1) {
                    assert_eq!(*held, vec![10, 20, 30], "held entry mutated under us");
                    held.len()
                } else {
                    0
                }
            });
            let evicted = map.retain(|_, _| false);
            assert_eq!(evicted, 1, "the sweep dropped the single entry");
            let seen = reader.join();
            assert!(seen == 0 || seen == 3, "reader saw a partial value");
            assert_eq!(map.get(&1), None, "entry is gone after the sweep");
        },
    );
    report.assert_ok();
}
