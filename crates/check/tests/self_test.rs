//! Self-tests of the model checker: the negative controls (a seeded
//! race, a seeded deadlock) that prove the detector actually fires, the
//! determinism guarantee, and the suite-wide schedule-count floor.

use ssd_check::{check, check_with, thread, Config, Failure, RaceCell};
use std::sync::Arc;

/// Negative control: two unsynchronized writers on plain memory. If the
/// checker cannot find this two-line race, nothing else it reports can
/// be trusted.
#[test]
fn seeded_race_negative_control() {
    let report = check("self.seeded-race", || {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.update(|x| x + 1));
        cell.update(|x| x + 1);
        t.join();
    });
    match &report.failure {
        Some(Failure::Race { kind, .. }) => {
            assert_eq!(*kind, "write-write", "both accesses are updates");
        }
        other => panic!("expected a data race, got {other:?}"),
    }
    assert!(
        report.schedules >= 1,
        "the race must be found in a bounded exploration"
    );
}

/// A write→read pair ordered by join carries a happens-before edge, so
/// the same detector that fails the control above stays quiet here.
#[test]
fn join_edge_orders_write_before_read() {
    let report = check("self.join-hb", || {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.set(7));
        t.join();
        assert_eq!(cell.get(), 7, "joined write is visible");
    });
    report.assert_ok();
}

/// Spawn carries a happens-before edge too: a value written before the
/// spawn is visible to the child without further synchronization.
#[test]
fn spawn_edge_orders_parent_writes() {
    let report = check("self.spawn-hb", || {
        let cell = Arc::new(RaceCell::new(0u64));
        cell.set(3);
        let c2 = Arc::clone(&cell);
        thread::spawn(move || assert_eq!(c2.get(), 3)).join();
    });
    report.assert_ok();
}

/// Concurrent readers never race with each other.
#[test]
fn concurrent_reads_are_clean() {
    let report = check("self.read-read", || {
        let cell = Arc::new(RaceCell::new(5u64));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let c = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..2 {
                        assert_eq!(c.get(), 5);
                    }
                })
            })
            .collect();
        for r in readers {
            r.join();
        }
    });
    report.assert_ok();
    assert!(
        report.schedules > 1,
        "three readers must produce more than one interleaving"
    );
}

/// A scenario thread's assertion failure is reported as a counterexample
/// (with the schedule trace), not swallowed.
#[test]
fn scenario_panic_becomes_counterexample() {
    let report = check_with("self.panic", Config::with_max_schedules(64), || {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || c2.set(1));
        // Racy *by timing* but synchronized per access: whether the
        // child's store lands first is schedule-dependent, and one
        // schedule makes this assertion fail.
        t.join();
        assert_eq!(cell.get(), 0, "deliberately wrong in every schedule");
    });
    match &report.failure {
        Some(Failure::Panic { message, .. }) => {
            assert!(
                message.contains("deliberately wrong"),
                "panic message carried through: {message}"
            );
        }
        other => panic!("expected a panic counterexample, got {other:?}"),
    }
}

/// The same scenario explored twice visits the identical schedule tree:
/// same count, same verdict. This is what makes a reported
/// counterexample replayable.
#[test]
fn exploration_is_deterministic() {
    let scenario = || {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            for _ in 0..3 {
                c2.get();
            }
        });
        for _ in 0..3 {
            cell.get();
        }
        t.join();
    };
    let a = check("self.determinism-a", scenario);
    let b = check("self.determinism-b", scenario);
    a.assert_ok();
    b.assert_ok();
    assert_eq!(
        a.schedules, b.schedules,
        "replaying the same scenario must walk the same tree"
    );
    assert!(!a.capped, "scenario is small enough to exhaust");
}

/// A higher preemption bound explores at least as many schedules.
#[test]
fn preemption_bound_is_monotone() {
    let scenario = || {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            for _ in 0..2 {
                c2.get();
            }
        });
        for _ in 0..2 {
            cell.get();
        }
        t.join();
    };
    let low_cfg = Config {
        preemption_bound: 0,
        ..Config::default()
    };
    let low = check_with("self.bound-0", low_cfg, scenario);
    let high_cfg = Config {
        preemption_bound: 3,
        ..Config::default()
    };
    let high = check_with("self.bound-3", high_cfg, scenario);
    low.assert_ok();
    high.assert_ok();
    assert!(
        high.schedules > low.schedules,
        "bound 3 ({}) must beat bound 0 ({})",
        high.schedules,
        low.schedules
    );
}

/// The acceptance floor for the whole suite: this one test drives the
/// checker through enough read-heavy scenarios to prove the explorer
/// enumerates ≥ 1,000 *distinct* schedules, so a silently-degenerate
/// scheduler (always 1 schedule) fails loudly here and in CI's grep.
#[test]
fn suite_explores_at_least_a_thousand_schedules() {
    let mut total = 0u64;
    for threads in [2usize, 3] {
        for ops in [2usize, 3] {
            let name = format!("self.floor-{threads}x{ops}");
            let report = check_with(&name, Config::with_max_schedules(2_000), move || {
                let cell = Arc::new(RaceCell::new(1u64));
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        let c = Arc::clone(&cell);
                        thread::spawn(move || {
                            for _ in 0..ops {
                                assert_eq!(c.get(), 1);
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join();
                }
            });
            report.assert_ok();
            total += report.schedules;
        }
    }
    assert!(
        total >= 1_000,
        "schedule floor: explored only {total} schedules"
    );
    assert!(
        ssd_check::explored_total() >= total,
        "global counter aggregates every check() in the process"
    );
}

/// Seeded-deadlock negative control and lock-order coverage only exist
/// when the shim is instrumented — in a plain build the real mutexes
/// would really deadlock.
#[cfg(ssd_model_check)]
mod instrumented {
    use super::*;
    use ssd_base::sync::Mutex;

    /// ABBA deadlock: found and reported, with both blocked ops named.
    #[test]
    fn seeded_deadlock_negative_control() {
        let report = check("self.seeded-deadlock", || {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap_or_else(|e| e.into_inner());
                let _gb = b2.lock().unwrap_or_else(|e| e.into_inner());
            });
            {
                let _gb = b.lock().unwrap_or_else(|e| e.into_inner());
                let _ga = a.lock().unwrap_or_else(|e| e.into_inner());
            }
            t.join();
        });
        match &report.failure {
            Some(Failure::Deadlock { waiting, .. }) => {
                assert_eq!(waiting.len(), 2, "both threads blocked: {waiting:?}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    /// The same data race as the negative control, healed by a shim
    /// mutex: lock/unlock clock transfer orders the two updates in
    /// every interleaving.
    #[test]
    fn mutex_heals_the_seeded_race() {
        let report = check("self.mutex-heals", || {
            let cell = Arc::new(RaceCell::new(0u64));
            let lock = Arc::new(Mutex::new(()));
            let (c2, l2) = (Arc::clone(&cell), Arc::clone(&lock));
            let t = thread::spawn(move || {
                let _g = l2.lock().unwrap_or_else(|e| e.into_inner());
                c2.update(|x| x + 1);
            });
            {
                let _g = lock.lock().unwrap_or_else(|e| e.into_inner());
                cell.update(|x| x + 1);
            }
            t.join();
            let _g = lock.lock().unwrap_or_else(|e| e.into_inner());
            assert_eq!(cell.get(), 2, "no lost update under the lock");
        });
        report.assert_ok();
        assert!(report.schedules > 1, "lock contention still interleaves");
    }

    /// `OnceLock::get_or_init` under contention: exactly one closure
    /// run per execution, every thread sees the winner's value.
    #[test]
    fn once_lock_elects_a_single_winner() {
        let report = check("self.once-winner", || {
            let once: Arc<ssd_base::sync::OnceLock<u64>> =
                Arc::new(ssd_base::sync::OnceLock::new());
            let runs = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let workers: Vec<_> = (0..2)
                .map(|i| {
                    let o = Arc::clone(&once);
                    let r = Arc::clone(&runs);
                    thread::spawn(move || {
                        let v = *o.get_or_init(|| {
                            r.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            40 + i
                        });
                        v
                    })
                })
                .collect();
            let seen: Vec<u64> = workers.into_iter().map(|w| w.join()).collect();
            assert_eq!(seen[0], seen[1], "all threads agree on the winner");
            assert_eq!(
                runs.load(std::sync::atomic::Ordering::Relaxed),
                1,
                "exactly one init closure ran"
            );
        });
        report.assert_ok();
    }
}
