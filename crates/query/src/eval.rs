//! Query evaluation over data graphs (Definitions 2.2 and 2.3).
//!
//! A binding maps node variables to nodes, label variables to labels, and
//! value variables to values, such that every pattern definition is
//! *satisfied* at its node: each entry `L → Y` is witnessed by a path from
//! the node to `θ(Y)` spelling a word of `lang(L)`; at **ordered** nodes
//! the entries' first edges must be distinct and in increasing position
//! order; at **unordered** nodes paths may overlap freely (the paper's
//! set-like semantics).
//!
//! Evaluation is backtracking over pattern definitions with memoized
//! regular-path reachability; worst-case exponential (the queries express
//! joins), which is expected — this evaluator is the semantics reference
//! and the baseline for the optimizer of Section 4.2.

use std::collections::{BTreeSet, HashSet};

use ssd_automata::glushkov;
use ssd_automata::syntax::Atom as _;
use ssd_automata::{LabelAtom, Nfa};
use ssd_base::{OidId, VarId};
use ssd_model::{DataGraph, Node, NodeKind};

use crate::binding::{Binding, Bound};
use crate::pattern::{EdgeExpr, PatDef, Query, VarKind};

/// One way to satisfy a pattern entry at a node: the index of the first
/// edge used, the endpoint reached, and the label bound (for label-variable
/// entries).
#[derive(Clone, Debug)]
struct EntryCand {
    first_pos: usize,
    endpoint: OidId,
    label_var: Option<(VarId, ssd_base::LabelId)>,
}

/// Evaluates `q` on `g`, returning every total binding (deduplicated).
pub fn evaluate(q: &Query, g: &DataGraph) -> Vec<Binding> {
    let mut seen: BTreeSet<Vec<Option<Bound>>> = BTreeSet::new();
    let mut out = Vec::new();
    run(q, g, &mut |b| {
        if seen.insert(b.slots().to_vec()) {
            out.push(b.clone());
        }
        true
    });
    out
}

/// The set of result tuples: bindings projected on the SELECT list.
pub fn select_results(q: &Query, g: &DataGraph) -> BTreeSet<Vec<Option<Bound>>>
where
    Bound: Ord,
{
    let mut out = BTreeSet::new();
    run(q, g, &mut |b| {
        out.insert(b.project(q.select()));
        true
    });
    out
}

/// Whether the query has at least one result on `g`.
pub fn is_nonempty(q: &Query, g: &DataGraph) -> bool {
    let mut found = false;
    run(q, g, &mut |_| {
        found = true;
        false // stop enumeration
    });
    found
}

/// Core enumeration; `emit` returns `false` to stop early.
fn run(q: &Query, g: &DataGraph, emit: &mut dyn FnMut(&Binding) -> bool) {
    // Precompile the regex of each entry.
    let mut nfas: Vec<Vec<Option<Nfa<LabelAtom>>>> = Vec::with_capacity(q.defs().len());
    for (_, def) in q.defs() {
        nfas.push(
            def.edges()
                .iter()
                .map(|e| match &e.expr {
                    EdgeExpr::Regex(r) => Some(glushkov::build(r)),
                    EdgeExpr::LabelVar(_) => None,
                })
                .collect(),
        );
    }

    // Order definitions so each definition's variable is bound before the
    // definition is processed (root first; processing binds targets).
    let order = match eval_order(q) {
        Some(o) => o,
        None => return,
    };

    let mut binding = Binding::new(q.num_vars());
    if !binding.bind(q.root_var(), Bound::Node(g.root())) {
        return;
    }
    if !var_node_ok(q, g, q.root_var(), g.root()) {
        return;
    }
    let mut stop = false;
    process_defs(q, g, &nfas, &order, 0, &mut binding, emit, &mut stop);
}

/// Whether binding node variable `v` to node `o` respects referenceability.
fn var_node_ok(q: &Query, g: &DataGraph, v: VarId, o: OidId) -> bool {
    match q.kind(v) {
        VarKind::Node { referenceable } => !referenceable || g.is_referenceable(o),
        _ => false,
    }
}

/// Topological-ish order: defs whose variable is already bound go first.
fn eval_order(q: &Query) -> Option<Vec<usize>> {
    let n = q.defs().len();
    let mut order = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut bound: HashSet<VarId> = [q.root_var()].into_iter().collect();
    while order.len() < n {
        let mut progressed = false;
        for (i, d) in done.iter_mut().enumerate() {
            if *d {
                continue;
            }
            let (v, def) = &q.defs()[i];
            if bound.contains(v) {
                *d = true;
                order.push(i);
                for e in def.edges() {
                    bound.insert(e.target);
                }
                progressed = true;
            }
        }
        if !progressed {
            // Cannot happen for connected patterns, but guard anyway.
            return None;
        }
    }
    Some(order)
}

#[allow(clippy::too_many_arguments)]
fn process_defs(
    q: &Query,
    g: &DataGraph,
    nfas: &[Vec<Option<Nfa<LabelAtom>>>],
    order: &[usize],
    k: usize,
    binding: &mut Binding,
    emit: &mut dyn FnMut(&Binding) -> bool,
    stop: &mut bool,
) {
    if *stop {
        return;
    }
    if k == order.len() {
        if binding.is_total() && !emit(binding) {
            *stop = true;
        }
        return;
    }
    let di = order[k];
    let (v, def) = &q.defs()[di];
    let Some(Bound::Node(o)) = binding.get(*v).cloned() else {
        return;
    };

    match def {
        PatDef::Value(val) => {
            if g.node(o).value() == Some(val) {
                process_defs(q, g, nfas, order, k + 1, binding, emit, stop);
            }
        }
        PatDef::ValueVar(vv) => {
            if let Node::Atomic(val) = g.node(o) {
                let had = binding.get(*vv).is_some();
                if binding.bind(*vv, Bound::Value(val.clone())) {
                    process_defs(q, g, nfas, order, k + 1, binding, emit, stop);
                    if !had {
                        binding.unbind(*vv);
                    }
                }
            }
        }
        PatDef::Unordered(entries) | PatDef::Ordered(entries) => {
            let need = if def.is_ordered() {
                NodeKind::Ordered
            } else {
                NodeKind::Unordered
            };
            if g.kind(o) != need {
                return;
            }
            // Candidates per entry.
            let mut cands: Vec<Vec<EntryCand>> = Vec::with_capacity(entries.len());
            for (j, e) in entries.iter().enumerate() {
                let cs = entry_candidates(q, g, o, &e.expr, nfas[di][j].as_ref(), binding);
                if cs.is_empty() {
                    return;
                }
                cands.push(cs);
            }
            choose_entries(
                q,
                g,
                nfas,
                order,
                k,
                def.is_ordered(),
                entries,
                &cands,
                0,
                usize::MAX,
                binding,
                emit,
                stop,
            );
        }
    }
}

/// All ways to satisfy one entry at node `o` under the current binding.
fn entry_candidates(
    q: &Query,
    g: &DataGraph,
    o: OidId,
    expr: &EdgeExpr,
    nfa: Option<&Nfa<LabelAtom>>,
    binding: &Binding,
) -> Vec<EntryCand> {
    match expr {
        EdgeExpr::LabelVar(lv) => {
            let required = match binding.get(*lv) {
                Some(Bound::Label(l)) => Some(*l),
                _ => None,
            };
            g.edges(o)
                .iter()
                .enumerate()
                .filter(|(_, e)| required.is_none_or(|l| e.label == l))
                .map(|(i, e)| EntryCand {
                    first_pos: i,
                    endpoint: e.target,
                    label_var: Some((*lv, e.label)),
                })
                .collect()
        }
        EdgeExpr::Regex(_) => {
            let nfa = nfa.expect("regex entry has nfa");
            let mut out = Vec::new();
            for (i, e) in g.edges(o).iter().enumerate() {
                let starts = nfa.step(&[nfa.start()], &e.label);
                if starts.is_empty() {
                    continue;
                }
                for endpoint in path_endpoints(g, e.target, nfa, &starts) {
                    out.push(EntryCand {
                        first_pos: i,
                        endpoint,
                        label_var: None,
                    });
                }
            }
            let _ = q;
            out
        }
    }
}

/// Product reachability: from graph node `from` in NFA states `states`,
/// which nodes can be reached at an accepting state?
fn path_endpoints(
    g: &DataGraph,
    from: OidId,
    nfa: &Nfa<LabelAtom>,
    states: &[usize],
) -> Vec<OidId> {
    let mut seen: HashSet<(OidId, usize)> = HashSet::new();
    let mut stack: Vec<(OidId, usize)> = Vec::new();
    let mut endpoints: BTreeSet<OidId> = BTreeSet::new();
    for &s in states {
        if seen.insert((from, s)) {
            stack.push((from, s));
        }
    }
    while let Some((node, st)) = stack.pop() {
        if nfa.is_accepting(st) {
            endpoints.insert(node);
        }
        for e in g.edges(node) {
            for (a, r) in nfa.edges(st) {
                if a.matches(&e.label) && seen.insert((e.target, *r)) {
                    stack.push((e.target, *r));
                }
            }
        }
    }
    endpoints.into_iter().collect()
}

#[allow(clippy::too_many_arguments)]
fn choose_entries(
    q: &Query,
    g: &DataGraph,
    nfas: &[Vec<Option<Nfa<LabelAtom>>>],
    order: &[usize],
    k: usize,
    ordered: bool,
    entries: &[crate::pattern::PatEdge],
    cands: &[Vec<EntryCand>],
    j: usize,
    last_pos: usize,
    binding: &mut Binding,
    emit: &mut dyn FnMut(&Binding) -> bool,
    stop: &mut bool,
) {
    if *stop {
        return;
    }
    if j == entries.len() {
        process_defs(q, g, nfas, order, k + 1, binding, emit, stop);
        return;
    }
    for c in &cands[j] {
        if ordered && last_pos != usize::MAX && c.first_pos <= last_pos {
            continue;
        }
        let target = entries[j].target;
        if !var_node_ok(q, g, target, c.endpoint) {
            continue;
        }
        let target_had = binding.get(target).is_some();
        if !binding.bind(target, Bound::Node(c.endpoint)) {
            continue;
        }
        let mut label_bound = false;
        let mut ok = true;
        if let Some((lv, l)) = c.label_var {
            let had = binding.get(lv).is_some();
            if binding.bind(lv, Bound::Label(l)) {
                label_bound = !had;
            } else {
                ok = false;
            }
        }
        if ok {
            let next_last = if ordered { c.first_pos } else { last_pos };
            choose_entries(
                q,
                g,
                nfas,
                order,
                k,
                ordered,
                entries,
                cands,
                j + 1,
                next_last,
                binding,
                emit,
                stop,
            );
        }
        if label_bound {
            if let Some((lv, _)) = c.label_var {
                binding.unbind(lv);
            }
        }
        if !target_had {
            binding.unbind(target);
        }
        if *stop {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ssd_base::SharedInterner;
    use ssd_model::parse_data_graph;

    fn setup(query: &str, data: &str) -> (Query, DataGraph) {
        let pool = SharedInterner::new();
        let q = parse_query(query, &pool).unwrap();
        let g = parse_data_graph(data, &pool).unwrap();
        (q, g)
    }

    const BIB: &str = r#"
        o1 = [paper -> o2, paper -> o9];
        o2 = [title -> o3, author -> o4, author -> o14];
        o3 = "Traces";
        o4 = [name -> o5, email -> o6];
        o5 = [firstname -> o7, lastname -> o8];
        o6 = "v@x"; o7 = "Victor"; o8 = "Vianu";
        o9 = [title -> o10, author -> o11];
        o10 = "Other"; o11 = [name -> o12, email -> o13];
        o12 = [firstname -> o15, lastname -> o16];
        o13 = "s@x";
        o14 = [name -> o17, email -> o18];
        o17 = [firstname -> o19, lastname -> o20];
        o18 = "a@x"; o19 = "Serge"; o20 = "Abiteboul";
        o15 = "John"; o16 = "Smith"
    "#;

    #[test]
    fn finds_papers_with_both_authors_in_order() {
        // Vianu (author 1) before Abiteboul (author 2): o2 qualifies.
        let (q, g) = setup(
            r#"SELECT X1
               WHERE Root = [paper -> X1];
                     X1 = [author.name._* -> X2, author.name._* -> X3];
                     X2 = "Vianu"; X3 = "Abiteboul""#,
            BIB,
        );
        let res = select_results(&q, &g);
        assert_eq!(res.len(), 1);
        let o2 = g.by_name("o2").unwrap();
        assert_eq!(res.iter().next().unwrap()[0], Some(Bound::Node(o2)));
    }

    #[test]
    fn order_constraint_rejects_swapped_authors() {
        // Abiteboul before Vianu fails (ordered node, positions must
        // increase).
        let (q, g) = setup(
            r#"SELECT X1
               WHERE Root = [paper -> X1];
                     X1 = [author.name._* -> X2, author.name._* -> X3];
                     X2 = "Abiteboul"; X3 = "Vianu""#,
            BIB,
        );
        assert!(!is_nonempty(&q, &g));
    }

    #[test]
    fn wildcard_paths_reach_deep() {
        let (q, g) = setup(r#"SELECT X WHERE Root = [_*.lastname -> X]"#, BIB);
        let res = select_results(&q, &g);
        assert_eq!(res.len(), 3); // Vianu, Abiteboul, Smith nodes
    }

    #[test]
    fn unordered_nodes_allow_overlap() {
        let (q, g) = setup(
            "SELECT X, Y WHERE Root = {a -> X, a -> Y}",
            "o1 = {a -> o2}; o2 = 1",
        );
        // Set semantics: both entries may bind the same edge.
        let res = select_results(&q, &g);
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn ordered_nodes_forbid_overlap() {
        let (q, g) = setup(
            "SELECT X, Y WHERE Root = [a -> X, a -> Y]",
            "o1 = [a -> o2]; o2 = 1",
        );
        assert!(!is_nonempty(&q, &g));
        let (q2, g2) = setup(
            "SELECT X, Y WHERE Root = [a -> X, a -> Y]",
            "o1 = [a -> o2, a -> o3]; o2 = 1; o3 = 2",
        );
        assert_eq!(select_results(&q2, &g2).len(), 1);
    }

    #[test]
    fn label_variable_binds_labels() {
        let (q, g) = setup(
            "SELECT L WHERE Root = {L -> X}",
            "o1 = {a -> o2, b -> o3}; o2 = 1; o3 = 2",
        );
        let res = select_results(&q, &g);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn label_join_requires_same_label() {
        let (q, g) = setup(
            "SELECT L WHERE Root = {L -> X}; X = {L -> Y}",
            "o1 = {a -> o2, b -> o4}; o2 = {a -> o3}; o3 = 1; o4 = {c -> o5}; o5 = 2",
        );
        let res = select_results(&q, &g);
        // Only the a→(a→…) chain matches (b→(c→…) has different labels).
        assert_eq!(res.len(), 1);
        let a = g.pool().get("a").unwrap();
        assert_eq!(res.iter().next().unwrap()[0], Some(Bound::Label(a)));
    }

    #[test]
    fn value_join_across_definitions() {
        let (q, g) = setup(
            "SELECT V WHERE Root = {a -> X, b -> Y}; X = V; Y = V",
            r#"o1 = {a -> o2, b -> o3}; o2 = "same"; o3 = "same""#,
        );
        assert_eq!(select_results(&q, &g).len(), 1);
        let (q2, g2) = setup(
            "SELECT V WHERE Root = {a -> X, b -> Y}; X = V; Y = V",
            r#"o1 = {a -> o2, b -> o3}; o2 = "one"; o3 = "two""#,
        );
        assert!(!is_nonempty(&q2, &g2));
    }

    #[test]
    fn node_join_through_referenceable_target() {
        let (q, g) = setup(
            "SELECT X WHERE Root = {a -> &X, b -> &X}; &X = 7",
            "o1 = {a -> &o2, b -> &o2}; &o2 = 7",
        );
        assert_eq!(select_results(&q, &g).len(), 1);
        let (q2, g2) = setup(
            "SELECT X WHERE Root = {a -> &X, b -> &X}; &X = 7",
            "o1 = {a -> &o2, b -> &o3}; &o2 = 7; &o3 = 7",
        );
        assert!(!is_nonempty(&q2, &g2));
    }

    #[test]
    fn referenceable_var_requires_referenceable_node() {
        let (q, g) = setup("SELECT X WHERE Root = {a -> &X}", "o1 = {a -> o2}; o2 = 1");
        assert!(!is_nonempty(&q, &g));
    }

    #[test]
    fn cyclic_data_with_star_paths() {
        let (q, g) = setup(
            "SELECT X WHERE Root = {a.a.a.a.a -> X}",
            "o1 = {a -> &o2}; &o2 = {a -> &o2, stop -> o3}; o3 = 1",
        );
        // Path a^5 loops through &o2.
        assert!(is_nonempty(&q, &g));
    }

    #[test]
    fn boolean_query_nonempty() {
        let (q, g) = setup("SELECT WHERE Root = {_+ -> X}", "o1 = {a -> o2}; o2 = 1");
        assert!(is_nonempty(&q, &g));
        let res = select_results(&q, &g);
        assert_eq!(res.len(), 1); // the empty tuple
        assert!(res.iter().next().unwrap().is_empty());
    }

    #[test]
    fn atomic_root_fails_collection_pattern() {
        let (q, g) = setup("SELECT X WHERE Root = {a -> X}", "o1 = 5");
        assert!(!is_nonempty(&q, &g));
    }

    #[test]
    fn kind_mismatch_ordered_vs_unordered() {
        let (q, g) = setup("SELECT X WHERE Root = [a -> X]", "o1 = {a -> o2}; o2 = 1");
        assert!(!is_nonempty(&q, &g));
    }
}
