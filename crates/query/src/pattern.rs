//! Pattern and query ASTs (Table 1 of the paper).
//!
//! A selection query is `SELECT Var, … WHERE PatDef; …; PatDef`. Pattern
//! definitions bind *node variables* to values, value variables, or
//! (un)ordered collections of `L → nodeVar` pairs, where `L` is a regular
//! path expression or a *label variable*.
//!
//! Variable-kind convention (matching the paper's examples): identifiers
//! starting with an uppercase letter are variables (`Root`, `X1`, `V`);
//! lowercase identifiers are labels (`paper`, `author`).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ssd_automata::display::regex_to_string;
use ssd_automata::{LabelAtom, Regex};
use ssd_base::{SharedInterner, Span, VarId};
use ssd_model::Value;

/// The kind of a variable, inferred from its syntactic positions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarKind {
    /// A node variable; `referenceable` if written `&X`.
    Node {
        /// Whether the variable is `&`-prefixed.
        referenceable: bool,
    },
    /// A label variable (used in edge-expression position).
    Label,
    /// A value variable (used in value position).
    Value,
}

/// An edge expression `L`: a regular path expression or a label variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EdgeExpr {
    /// A regular path expression over labels and `_`.
    Regex(Regex<LabelAtom>),
    /// A label variable (binds to a single label; the path has length 1).
    LabelVar(VarId),
}

/// One `L → nodeVar` entry of a pattern collection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatEdge {
    /// The path expression or label variable.
    pub expr: EdgeExpr,
    /// The node variable the path must end at.
    pub target: VarId,
}

/// The right-hand side of a pattern definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PatDef {
    /// `X = v` — the node is atomic with exactly this value.
    Value(Value),
    /// `X = V` — the node is atomic; `V` binds its value.
    ValueVar(VarId),
    /// `X = {P}` — an unordered node satisfying the entries.
    Unordered(Vec<PatEdge>),
    /// `X = [P]` — an ordered node satisfying the entries in path order.
    Ordered(Vec<PatEdge>),
}

impl PatDef {
    /// The collection entries, if this is a collection pattern.
    pub fn edges(&self) -> &[PatEdge] {
        match self {
            PatDef::Unordered(es) | PatDef::Ordered(es) => es,
            _ => &[],
        }
    }

    /// Whether this is the ordered collection form.
    pub fn is_ordered(&self) -> bool {
        matches!(self, PatDef::Ordered(_))
    }
}

/// Source spans of one `L → nodeVar` entry of a collection definition.
#[derive(Clone, Debug, Default)]
pub struct EdgeSpans {
    /// The whole entry, `L -> Var`.
    pub entry: Span,
    /// The edge expression `L` alone.
    pub expr: Span,
    /// The top-level `|` branches of `L` (a single span when there is no
    /// top-level alternation; empty for label variables).
    pub branches: Vec<Span>,
}

/// Source spans of one pattern definition.
#[derive(Clone, Debug, Default)]
pub struct DefSpans {
    /// The whole definition, `Var = rhs`.
    pub whole: Span,
    /// The defined variable's occurrence on the left-hand side.
    pub var: Span,
    /// Per-entry spans (empty for value / value-variable definitions).
    pub edges: Vec<EdgeSpans>,
}

/// Source locations for a parsed [`Query`], kept as a side table so the
/// AST itself stays comparable and programmatically constructible
/// (generated queries simply have no spans).
///
/// Indices align with the query: `defs[i]` locates `query.defs()[i]`,
/// and `var_decls[v.index()]` locates variable `v`'s first occurrence.
#[derive(Clone, Debug, Default)]
pub struct QuerySpans {
    /// The original source text the spans index into.
    pub source: String,
    /// First-occurrence span per variable.
    pub var_decls: Vec<Span>,
    /// Per-definition spans, in `defs()` order.
    pub defs: Vec<DefSpans>,
}

impl QuerySpans {
    /// The spanned slice of the stored source, if in bounds.
    pub fn slice(&self, span: Span) -> Option<&str> {
        span.slice(&self.source)
    }
}

/// A selection query.
#[derive(Clone, Debug)]
pub struct Query {
    pool: SharedInterner,
    var_names: Vec<String>,
    var_kinds: Vec<VarKind>,
    /// Pattern definitions in source order; the first is the root variable.
    defs: Vec<(VarId, PatDef)>,
    /// Definition index per node variable, if defined.
    def_of: Vec<Option<usize>>,
    select: Vec<VarId>,
    by_name: HashMap<String, VarId>,
    /// Source spans, when the query came from text (see [`QuerySpans`]).
    /// Deliberately not part of any equality or memoization key: spans
    /// never affect semantics.
    spans: Option<Arc<QuerySpans>>,
}

impl Query {
    pub(crate) fn from_parts(
        pool: SharedInterner,
        var_names: Vec<String>,
        var_kinds: Vec<VarKind>,
        defs: Vec<(VarId, PatDef)>,
        select: Vec<VarId>,
    ) -> Query {
        let by_name = var_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), VarId::from_usize(i)))
            .collect();
        let mut def_of = vec![None; var_names.len()];
        for (i, (v, _)) in defs.iter().enumerate() {
            def_of[v.index()] = Some(i);
        }
        Query {
            pool,
            var_names,
            var_kinds,
            defs,
            def_of,
            select,
            by_name,
            spans: None,
        }
    }

    /// Attaches parser-recorded source spans (parser only).
    pub(crate) fn set_spans(&mut self, spans: QuerySpans) {
        self.spans = Some(Arc::new(spans));
    }

    /// The source spans recorded by the parser, if this query came from
    /// text. Programmatically built or rewritten queries return `None`
    /// (spans are dropped by [`Query::with_def_replaced`], which changes
    /// the AST out from under them).
    pub fn spans(&self) -> Option<&QuerySpans> {
        self.spans.as_deref()
    }

    /// The label pool.
    pub fn pool(&self) -> &SharedInterner {
        &self.pool
    }

    /// Number of variables (node + label + value).
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// All variables.
    pub fn vars(&self) -> impl Iterator<Item = VarId> {
        (0..self.var_names.len()).map(VarId::from_usize)
    }

    /// The variable's kind.
    pub fn kind(&self, v: VarId) -> VarKind {
        self.var_kinds[v.index()]
    }

    /// The variable's source name.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The pattern definitions, in source order.
    pub fn defs(&self) -> &[(VarId, PatDef)] {
        &self.defs
    }

    /// The definition of node variable `v`, if any.
    pub fn def(&self, v: VarId) -> Option<&PatDef> {
        self.def_of[v.index()].map(|i| &self.defs[i].1)
    }

    /// The root variable (owner of the first definition).
    pub fn root_var(&self) -> VarId {
        self.defs[0].0
    }

    /// The SELECT list.
    pub fn select(&self) -> &[VarId] {
        &self.select
    }

    /// Query size: total AST nodes across all definitions (the `|Q|` of the
    /// complexity experiments).
    pub fn size(&self) -> usize {
        self.defs
            .iter()
            .map(|(_, d)| match d {
                PatDef::Value(_) | PatDef::ValueVar(_) => 1,
                PatDef::Unordered(es) | PatDef::Ordered(es) => es
                    .iter()
                    .map(|e| match &e.expr {
                        EdgeExpr::Regex(r) => 1 + r.size(),
                        EdgeExpr::LabelVar(_) => 2,
                    })
                    .sum::<usize>(),
            })
            .sum()
    }

    /// Rewrites the definition at index `i` (used by feedback queries).
    /// Spans are dropped: they would no longer describe the rewritten AST.
    pub fn with_def_replaced(&self, i: usize, def: PatDef) -> Query {
        let mut q = self.clone();
        q.defs[i].1 = def;
        q.spans = None;
        q
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, v) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_names[v.index()])?;
        }
        write!(f, "\nWHERE ")?;
        for (i, (v, def)) in self.defs.iter().enumerate() {
            if i > 0 {
                write!(f, ";\n      ")?;
            }
            let amp = match self.var_kinds[v.index()] {
                VarKind::Node {
                    referenceable: true,
                } => "&",
                _ => "",
            };
            write!(f, "{amp}{} = ", self.var_names[v.index()])?;
            match def {
                PatDef::Value(val) => write!(f, "{val}")?,
                PatDef::ValueVar(vv) => write!(f, "{}", self.var_names[vv.index()])?,
                PatDef::Unordered(es) | PatDef::Ordered(es) => {
                    let (open, close) = if def.is_ordered() {
                        ('[', ']')
                    } else {
                        ('{', '}')
                    };
                    write!(f, "{open}")?;
                    for (j, e) in es.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        match &e.expr {
                            EdgeExpr::Regex(r) => {
                                let s = regex_to_string(r, &mut |a: &LabelAtom| match a {
                                    LabelAtom::Label(l) => self.pool.resolve(*l),
                                    LabelAtom::Any => "_".to_owned(),
                                });
                                write!(f, "{s}")?;
                            }
                            EdgeExpr::LabelVar(lv) => write!(f, "{}", self.var_names[lv.index()])?,
                        }
                        let tamp = match self.var_kinds[e.target.index()] {
                            VarKind::Node {
                                referenceable: true,
                            } => "&",
                            _ => "",
                        };
                        write!(f, " -> {tamp}{}", self.var_names[e.target.index()])?;
                    }
                    write!(f, "{close}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn accessors_on_paper_query() {
        let pool = SharedInterner::new();
        let q = parse_query(
            r#"SELECT X1
               WHERE Root = [paper -> X1];
                     X1 = [author.name._* -> X2, author.name._* -> X3];
                     X2 = "Vianu"; X3 = "Abiteboul""#,
            &pool,
        )
        .unwrap();
        assert_eq!(q.select().len(), 1);
        let x1 = q.var_by_name("X1").unwrap();
        assert_eq!(q.select()[0], x1);
        assert_eq!(q.var_name(q.root_var()), "Root");
        assert!(matches!(q.kind(x1), VarKind::Node { .. }));
        assert!(q.def(x1).unwrap().is_ordered());
        assert_eq!(q.def(x1).unwrap().edges().len(), 2);
        assert!(q.size() > 5);
    }

    #[test]
    fn display_round_trips() {
        let pool = SharedInterner::new();
        let src = r#"SELECT X2
            WHERE Root = {a.b* -> X1, L -> X2};
                  X1 = [c -> &X3];
                  &X3 = V"#;
        let q = parse_query(src, &pool).unwrap();
        let printed = q.to_string();
        let q2 = parse_query(&printed, &pool).unwrap();
        assert_eq!(q.num_vars(), q2.num_vars());
        assert_eq!(q.defs().len(), q2.defs().len());
        assert_eq!(printed, q2.to_string());
    }
}
