//! Parser for selection queries.
//!
//! ```text
//! Query  ::= SELECT Var, …, Var WHERE PatDef ; … ; PatDef
//! PatDef ::= NodeVar = value | NodeVar = ValueVar
//!          | NodeVar = {P} | NodeVar = [P]
//! P      ::= L -> NodeVar , … , L -> NodeVar
//! L      ::= path-regex | LabelVar
//! ```
//!
//! Identifiers starting uppercase are variables; lowercase identifiers are
//! labels. `&X` marks a referenceable node variable. A `SELECT` list may be
//! empty (a boolean query). Path-expression languages must not contain the
//! empty word (they describe actual paths — a paper requirement).
//!
//! The parser records a [`QuerySpans`] side table (definition, entry, and
//! variable spans plus the original source) on the returned [`Query`], and
//! every diagnostic it emits carries a `line:column` location.

use std::collections::HashMap;
use std::fmt;

use ssd_automata::{LabelAtom, Regex};
use ssd_base::span::format_location;
use ssd_base::{limits, Error, Result, SharedInterner, Span, VarId};
use ssd_model::Value;

use crate::pattern::{DefSpans, EdgeExpr, EdgeSpans, PatDef, PatEdge, Query, QuerySpans, VarKind};

/// Parses a selection query.
///
/// Hardened against pathological input: inputs longer than
/// [`limits::MAX_INPUT_LEN`] bytes, path expressions nesting
/// parentheses deeper than [`limits::MAX_NEST_DEPTH`], and unordered
/// pattern definitions with more than [`limits::MAX_UNORDERED_ENTRIES`]
/// entries (the unordered-selection engine's `u32` subset-mask bound)
/// are all rejected with [`Error::Limit`].
pub fn parse_query(input: &str, pool: &SharedInterner) -> Result<Query> {
    limits::check_input_len("query", input.len())?;
    let mut p = P {
        input,
        pos: 0,
        pool,
        names: Vec::new(),
        kinds: Vec::new(),
        var_spans: Vec::new(),
        by_name: HashMap::new(),
        depth: 0,
    };
    p.keyword("SELECT")?;
    let mut select_names: Vec<(String, Span)> = Vec::new();
    loop {
        p.skip_ws();
        if p.peek_keyword("WHERE") {
            break;
        }
        let (name, _, span) = p.var_ref()?;
        select_names.push((name, span));
        p.skip_ws();
        if !p.eat(',') {
            break;
        }
    }
    p.keyword("WHERE")?;

    let mut defs: Vec<(VarId, PatDef)> = Vec::new();
    let mut def_spans: Vec<DefSpans> = Vec::new();
    loop {
        let (v, def, spans) = parse_def(&mut p)?;
        defs.push((v, def));
        def_spans.push(spans);
        p.skip_ws();
        if p.eat(';') {
            continue;
        }
        if p.at_end() {
            break;
        }
        return Err(p.err("expected ';' between pattern definitions"));
    }
    if defs.is_empty() {
        return Err(p.err("a query needs at least one pattern definition"));
    }

    // Resolve the SELECT list (names must occur in the WHERE clause).
    let mut select = Vec::with_capacity(select_names.len());
    for (n, span) in &select_names {
        match p.by_name.get(n) {
            Some(&v) => select.push(v),
            None => {
                return Err(Error::undefined(format!(
                    "SELECT variable {n} does not occur in the WHERE clause at {}",
                    format_location(input, span.start)
                )))
            }
        }
    }

    // Each node variable defined at most once.
    {
        let mut seen = vec![false; p.names.len()];
        for (i, (v, _)) in defs.iter().enumerate() {
            if seen[v.index()] {
                return Err(Error::invalid(format!(
                    "node variable {} defined twice at {}",
                    p.names[v.index()],
                    format_location(input, def_spans[i].var.start)
                )));
            }
            seen[v.index()] = true;
        }
    }

    // Path languages must not contain the empty word or be empty.
    for (i, (_, def)) in defs.iter().enumerate() {
        for (j, e) in def.edges().iter().enumerate() {
            if let EdgeExpr::Regex(r) = &e.expr {
                let loc = || {
                    def_spans[i]
                        .edges
                        .get(j)
                        .map(|es| es.expr.start)
                        .unwrap_or(0)
                };
                if r.nullable() {
                    return Err(Error::invalid(format!(
                        "path expressions must not accept the empty word at {}",
                        format_location(input, loc())
                    )));
                }
                if r.is_empty_lang() {
                    return Err(Error::invalid(format!(
                        "path expression has an empty language at {}",
                        format_location(input, loc())
                    )));
                }
            }
        }
    }

    let mut q = Query::from_parts(pool.clone(), p.names, p.kinds, defs, select);
    q.set_spans(QuerySpans {
        source: input.to_owned(),
        var_decls: p.var_spans,
        defs: def_spans,
    });
    check_connected(&q)?;
    Ok(q)
}

/// The paper assumes patterns are *connected*: the root variable
/// transitively refers to every variable.
fn check_connected(q: &Query) -> Result<()> {
    let mut seen = vec![false; q.num_vars()];
    let mut stack = vec![q.root_var()];
    seen[q.root_var().index()] = true;
    while let Some(v) = stack.pop() {
        if let Some(def) = q.def(v) {
            let touch = |w: VarId, stack: &mut Vec<VarId>, seen: &mut Vec<bool>| {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    stack.push(w);
                }
            };
            match def {
                PatDef::ValueVar(vv) => touch(*vv, &mut stack, &mut seen),
                PatDef::Value(_) => {}
                PatDef::Unordered(es) | PatDef::Ordered(es) => {
                    for e in es {
                        touch(e.target, &mut stack, &mut seen);
                        if let EdgeExpr::LabelVar(lv) = e.expr {
                            touch(lv, &mut stack, &mut seen);
                        }
                    }
                }
            }
        }
    }
    for v in q.vars() {
        if !seen[v.index()] {
            let loc = q
                .spans()
                .and_then(|sp| sp.var_decls.get(v.index()).map(|s| (sp, *s)))
                .map(|(sp, s)| format!(" at {}", format_location(&sp.source, s.start)))
                .unwrap_or_default();
            return Err(Error::invalid(format!(
                "pattern is not connected: variable {} is unreachable from the root{loc}",
                q.var_name(v)
            )));
        }
    }
    Ok(())
}

struct P<'a> {
    input: &'a str,
    pos: usize,
    pool: &'a SharedInterner,
    names: Vec<String>,
    kinds: Vec<VarKind>,
    /// First-occurrence span per variable, aligned with `names`.
    var_spans: Vec<Span>,
    by_name: HashMap<String, VarId>,
    /// Parenthesis nesting depth inside path expressions — the only
    /// recursion in the grammar, bounded by [`limits::MAX_NEST_DEPTH`].
    depth: usize,
}

fn parse_def(p: &mut P<'_>) -> Result<(VarId, PatDef, DefSpans)> {
    p.skip_ws();
    let def_start = p.pos;
    let (name, referenceable, var_span) = p.var_ref()?;
    let v = p.declare_node(&name, referenceable, var_span)?;
    p.expect('=')?;
    p.skip_ws();
    let (def, edges) = match p.peek() {
        Some('{') => {
            p.eat('{');
            let (es, spans) = parse_entries(p, '}')?;
            // The unordered-selection engine enumerates entry subsets with
            // a u32 bitmask; reject definitions past that bound here so
            // the engine's invariant holds for every parsed query.
            limits::check_unordered_entries(es.len())?;
            (PatDef::Unordered(es), spans)
        }
        Some('[') => {
            p.eat('[');
            let (es, spans) = parse_entries(p, ']')?;
            (PatDef::Ordered(es), spans)
        }
        Some(c) if c.is_uppercase() => {
            let (vname, _, vspan) = p.var_ref()?;
            let vv = p.declare(&vname, VarKind::Value, vspan)?;
            (PatDef::ValueVar(vv), Vec::new())
        }
        _ => {
            let val = p.value()?;
            (PatDef::Value(val), Vec::new())
        }
    };
    let spans = DefSpans {
        whole: p.span_from(def_start),
        var: var_span,
        edges,
    };
    Ok((v, def, spans))
}

fn parse_entries(p: &mut P<'_>, close: char) -> Result<(Vec<PatEdge>, Vec<EdgeSpans>)> {
    let mut out = Vec::new();
    let mut spans = Vec::new();
    p.skip_ws();
    if p.eat(close) {
        return Ok((out, spans));
    }
    loop {
        p.skip_ws();
        let entry_start = p.pos;
        let (expr, expr_span, branches) = parse_edge_expr(p)?;
        p.arrow()?;
        let (tname, referenceable, tspan) = p.var_ref()?;
        let target = p.declare_node(&tname, referenceable, tspan)?;
        out.push(PatEdge { expr, target });
        spans.push(EdgeSpans {
            entry: p.span_from(entry_start),
            expr: expr_span,
            branches,
        });
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect(close)?;
        break;
    }
    Ok((out, spans))
}

/// Parses `L`: either a single uppercase identifier (label variable) or a
/// regular path expression. Returns the expression, its span, and the
/// spans of its top-level `|` branches (empty for label variables).
fn parse_edge_expr(p: &mut P<'_>) -> Result<(EdgeExpr, Span, Vec<Span>)> {
    p.skip_ws();
    let start = p.pos;
    if let Some(c) = p.peek() {
        if c.is_uppercase() {
            let (name, _, vspan) = p.var_ref()?;
            let v = p.declare(&name, VarKind::Label, vspan)?;
            // A label variable must stand alone (Table 1: L ::= R | labelVar).
            p.skip_ws();
            if matches!(p.peek(), Some('.' | '|' | '*' | '+' | '?')) {
                return Err(p.err("a label variable cannot occur inside a path expression"));
            }
            return Ok((EdgeExpr::LabelVar(v), vspan, Vec::new()));
        }
    }
    // The top-level alternation is parsed here (rather than delegating to
    // `regex_alt`) so each branch's span is recorded — the lint's
    // dead-branch diagnostics point at individual branches.
    let mut parts = Vec::new();
    let mut branches = Vec::new();
    loop {
        p.skip_ws();
        let bstart = p.pos;
        parts.push(regex_concat(p)?);
        branches.push(p.span_from(bstart));
        if p.peek() == Some('|') {
            p.eat('|');
        } else {
            break;
        }
    }
    let re = if parts.len() == 1 {
        parts.pop().expect("len checked")
    } else {
        Regex::alt(parts)
    };
    Ok((EdgeExpr::Regex(re), p.span_from(start), branches))
}

fn regex_alt(p: &mut P<'_>) -> Result<Regex<LabelAtom>> {
    let mut parts = vec![regex_concat(p)?];
    while p.peek() == Some('|') {
        p.eat('|');
        parts.push(regex_concat(p)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().expect("len checked")
    } else {
        Regex::alt(parts)
    })
}

fn regex_concat(p: &mut P<'_>) -> Result<Regex<LabelAtom>> {
    let mut parts = vec![regex_postfix(p)?];
    while p.peek() == Some('.') {
        p.eat('.');
        parts.push(regex_postfix(p)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().expect("len checked")
    } else {
        Regex::concat(parts)
    })
}

fn regex_postfix(p: &mut P<'_>) -> Result<Regex<LabelAtom>> {
    let mut re = regex_atom(p)?;
    loop {
        match p.peek() {
            Some('*') => {
                p.eat('*');
                re = Regex::star(re);
            }
            Some('+') => {
                p.eat('+');
                re = Regex::plus(re);
            }
            Some('?') => {
                p.eat('?');
                re = Regex::opt(re);
            }
            _ => break,
        }
    }
    Ok(re)
}

fn regex_atom(p: &mut P<'_>) -> Result<Regex<LabelAtom>> {
    match p.peek() {
        Some('(') => {
            p.eat('(');
            if p.peek() == Some(')') {
                p.eat(')');
                return Ok(Regex::Epsilon);
            }
            p.depth += 1;
            limits::check_depth("query path expression", p.depth)?;
            let re = regex_alt(p)?;
            p.depth -= 1;
            p.expect(')')?;
            Ok(re)
        }
        Some('_') => {
            p.pos += 1;
            Ok(Regex::atom(LabelAtom::Any))
        }
        Some(c) if c.is_lowercase() => {
            let word = p.ident()?;
            if word == "epsilon" {
                Ok(Regex::Epsilon)
            } else {
                Ok(Regex::atom(LabelAtom::Label(p.pool.intern(&word))))
            }
        }
        Some(c) if c.is_uppercase() => {
            Err(p.err("a label variable cannot occur inside a path expression"))
        }
        other => Err(p.err(format!("expected path-expression atom, found {other:?}"))),
    }
}

impl<'a> P<'a> {
    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    /// A parse error located at the current position.
    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::parse_at(msg, self.input, self.pos)
    }

    /// A parse error located at `pos`.
    fn err_at(&self, msg: impl fmt::Display, pos: usize) -> Error {
        Error::parse_at(msg, self.input, pos)
    }

    /// The span from `start` to the current position, with trailing
    /// whitespace (skipped by lookahead) trimmed off.
    fn span_from(&self, start: usize) -> Span {
        let text = &self.input[start..self.pos];
        Span::new(start, start + text.trim_end().len())
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.input.len()
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.rest().chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{c}' near {:?}",
                self.rest().chars().take(12).collect::<String>()
            )))
        }
    }

    fn peek_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        self.rest().starts_with(kw)
            && !self.rest()[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric())
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        if self.peek_keyword(kw) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn arrow(&mut self) -> Result<()> {
        self.skip_ws();
        if self.rest().starts_with("->") {
            self.pos += 2;
            Ok(())
        } else if self.rest().starts_with('→') {
            self.pos += '→'.len_utf8();
            Ok(())
        } else {
            Err(self.err("expected '->'"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        for c in self.rest().chars() {
            if c.is_alphanumeric() || c == ':' || c == '-' {
                if c == '-' {
                    let after = &self.input[self.pos + 1..];
                    if self.pos == start || after.starts_with('>') {
                        break;
                    }
                }
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err_at("expected identifier", start));
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn var_ref(&mut self) -> Result<(String, bool, Span)> {
        self.skip_ws();
        let start = self.pos;
        let referenceable = self.eat('&');
        let name = self.ident()?;
        match name.chars().next() {
            Some(c) if c.is_uppercase() => Ok((name, referenceable, self.span_from(start))),
            _ => Err(self.err_at(
                format!("variable names start with an uppercase letter, found {name:?}"),
                start,
            )),
        }
    }

    fn declare(&mut self, name: &str, kind: VarKind, span: Span) -> Result<VarId> {
        if let Some(&v) = self.by_name.get(name) {
            let existing = self.kinds[v.index()];
            let compatible = match (existing, kind) {
                (VarKind::Node { .. }, VarKind::Node { .. }) => true,
                (a, b) => a == b,
            };
            if !compatible {
                return Err(Error::invalid(format!(
                    "variable {name} used with conflicting kinds ({existing:?} vs {kind:?}) at {}",
                    format_location(self.input, span.start)
                )));
            }
            if let (
                VarKind::Node { referenceable: r },
                VarKind::Node {
                    referenceable: true,
                },
            ) = (existing, kind)
            {
                if !r {
                    self.kinds[v.index()] = VarKind::Node {
                        referenceable: true,
                    };
                }
            }
            return Ok(v);
        }
        let v = VarId::from_usize(self.names.len());
        self.names.push(name.to_owned());
        self.kinds.push(kind);
        self.var_spans.push(span);
        self.by_name.insert(name.to_owned(), v);
        Ok(v)
    }

    fn declare_node(&mut self, name: &str, referenceable: bool, span: Span) -> Result<VarId> {
        self.declare(name, VarKind::Node { referenceable }, span)
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some('"') => {
                let open = self.pos;
                self.pos += 1;
                let mut s = String::new();
                let mut iter = self.rest().char_indices();
                loop {
                    match iter.next() {
                        Some((i, '"')) => {
                            self.pos += i + 1;
                            return Ok(Value::Str(s));
                        }
                        Some((_, '\\')) => match iter.next() {
                            Some((_, c)) => s.push(c),
                            None => break,
                        },
                        Some((_, c)) => s.push(c),
                        None => break,
                    }
                }
                Err(self.err_at("unterminated string literal", open))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = self.pos;
                let mut is_float = false;
                let mut first = true;
                for ch in self.rest().chars() {
                    if ch.is_ascii_digit() || (first && (ch == '-' || ch == '+')) {
                        self.pos += ch.len_utf8();
                    } else if ch == '.' || ch == 'e' || ch == 'E' {
                        is_float = true;
                        self.pos += ch.len_utf8();
                    } else {
                        break;
                    }
                    first = false;
                }
                let text = &self.input[start..self.pos];
                if is_float {
                    text.parse::<f64>()
                        .map(Value::Float)
                        .map_err(|e| self.err_at(format!("bad float {text:?}: {e}"), start))
                } else {
                    text.parse::<i64>()
                        .map(Value::Int)
                        .map_err(|e| self.err_at(format!("bad int {text:?}: {e}"), start))
                }
            }
            _ => {
                let start = self.pos;
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    _ => Err(self.err_at(format!("expected a value, found {word:?}"), start)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> SharedInterner {
        SharedInterner::new()
    }

    #[test]
    fn parses_the_papers_abiteboul_vianu_query() {
        let p = pool();
        let q = parse_query(
            r#"SELECT X1
               WHERE Root = [paper -> X1];
                     X1 = [author.name._* -> X2, author.name._* -> X3];
                     X2 = "Vianu"; X3 = "Abiteboul""#,
            &p,
        )
        .unwrap();
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.defs().len(), 4);
        assert_eq!(q.var_name(q.root_var()), "Root");
    }

    #[test]
    fn parses_table1_pattern_example() {
        // X={a*->Y,(b|(c.d))->U}; Y=[a->Z,(c|d)->V]; U=3.14; V=2.71
        let p = pool();
        let q = parse_query(
            "SELECT X WHERE X = {a* -> Y, (b|(c.d)) -> U}; Y = [a -> Z, (c|d) -> V]; U = 3.14; V = 2.71",
            &p,
        );
        // a* is nullable -> must be rejected (paths are non-empty).
        assert!(q.is_err());
        let q2 = parse_query(
            "SELECT X WHERE X = {a+ -> Y, (b|(c.d)) -> U}; Y = [a -> Z, (c|d) -> V]; U = 3.14; V = 2.71",
            &p,
        )
        .unwrap();
        assert_eq!(q2.defs().len(), 4);
        assert!(q2.var_by_name("Z").is_some());
    }

    #[test]
    fn boolean_query_with_empty_select() {
        let p = pool();
        let q = parse_query("SELECT WHERE Root = [a -> X]", &p).unwrap();
        assert!(q.select().is_empty());
    }

    #[test]
    fn label_variables() {
        let p = pool();
        let q = parse_query("SELECT L WHERE Root = {L -> X}; X = 1", &p).unwrap();
        let l = q.var_by_name("L").unwrap();
        assert_eq!(q.kind(l), VarKind::Label);
    }

    #[test]
    fn label_variable_inside_regex_rejected() {
        let p = pool();
        assert!(parse_query("SELECT X WHERE Root = {a.L -> X}", &p).is_err());
        assert!(parse_query("SELECT X WHERE Root = {L.a -> X}", &p).is_err());
        assert!(parse_query("SELECT X WHERE Root = {L* -> X}", &p).is_err());
    }

    #[test]
    fn value_variables_and_joins() {
        let p = pool();
        let q = parse_query("SELECT V WHERE Root = {a -> X, b -> Y}; X = V; Y = V", &p).unwrap();
        let v = q.var_by_name("V").unwrap();
        assert_eq!(q.kind(v), VarKind::Value);
    }

    #[test]
    fn kind_conflicts_rejected() {
        let p = pool();
        // V used as node target and as value variable.
        assert!(parse_query("SELECT V WHERE Root = {a -> V, b -> X}; X = V", &p).is_err());
        // L used as label variable and as node variable.
        assert!(parse_query("SELECT L WHERE Root = {L -> X}; L = 1", &p).is_err());
    }

    #[test]
    fn referenceable_variables() {
        let p = pool();
        let q = parse_query("SELECT X WHERE Root = {a -> &X, b -> &X}; &X = 1", &p).unwrap();
        let x = q.var_by_name("X").unwrap();
        assert_eq!(
            q.kind(x),
            VarKind::Node {
                referenceable: true
            }
        );
    }

    #[test]
    fn double_definition_rejected() {
        let p = pool();
        assert!(parse_query("SELECT X WHERE X = 1; X = 2", &p).is_err());
    }

    #[test]
    fn disconnected_pattern_rejected() {
        let p = pool();
        assert!(parse_query("SELECT X WHERE Root = {a -> X}; Y = 1", &p).is_err());
    }

    #[test]
    fn empty_word_paths_rejected() {
        let p = pool();
        assert!(parse_query("SELECT X WHERE Root = {_* -> X}", &p).is_err());
        assert!(parse_query("SELECT X WHERE Root = {a? -> X}", &p).is_err());
        assert!(parse_query("SELECT X WHERE Root = {_+ -> X}", &p).is_ok());
    }

    #[test]
    fn select_variable_must_occur() {
        let p = pool();
        assert!(parse_query("SELECT Z WHERE Root = {a -> X}", &p).is_err());
    }

    #[test]
    fn oversized_unordered_definition_rejected() {
        let p = pool();
        let n = ssd_base::limits::MAX_UNORDERED_ENTRIES;
        let entries = |k: usize| {
            (0..k)
                .map(|i| format!("l{i} -> X{i}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let too_many = format!("SELECT WHERE Root = {{{}}}", entries(n + 1));
        let err = parse_query(&too_many, &p).unwrap_err();
        assert!(matches!(err, Error::Limit(_)), "{err}");
        // Exactly at the bound is fine.
        let at_bound = format!("SELECT WHERE Root = {{{}}}", entries(n));
        assert!(parse_query(&at_bound, &p).is_ok());
        // Ordered definitions are not subject to the bound.
        let ordered = format!("SELECT WHERE Root = [{}]", entries(n + 1));
        assert!(parse_query(&ordered, &p).is_ok());
    }

    #[test]
    fn pathological_nesting_is_rejected_not_overflowed() {
        let p = pool();
        let deep = format!(
            "SELECT WHERE Root = {{{}a{} -> X}}",
            "(".repeat(50_000),
            ")".repeat(50_000)
        );
        let err = parse_query(&deep, &p).unwrap_err();
        assert!(matches!(err, Error::Limit(_)), "{err}");
    }

    #[test]
    fn oversized_input_is_rejected() {
        let p = pool();
        let huge = " ".repeat(ssd_base::limits::MAX_INPUT_LEN + 1);
        let err = parse_query(&huge, &p).unwrap_err();
        assert!(matches!(err, Error::Limit(_)));
    }

    #[test]
    fn lowercase_variable_rejected() {
        let p = pool();
        assert!(parse_query("SELECT x WHERE x = 1", &p).is_err());
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let p = pool();
        let err = parse_query("SELECT X WHERE\nRoot = [a ->\n%]", &p).unwrap_err();
        let msg = err.to_string();
        let (line, col) = ssd_base::span::extract_location(&msg)
            .unwrap_or_else(|| panic!("no location in {msg:?}"));
        assert_eq!((line, col), (3, 1), "{msg}");
    }

    #[test]
    fn spans_resolve_to_source_text() {
        let p = pool();
        let src = "SELECT X WHERE Root = [paper.(a|b) -> X, c -> Y]; X = 1; Y = 2";
        let q = parse_query(src, &p).unwrap();
        let spans = q.spans().expect("parsed queries carry spans");
        assert_eq!(spans.source, src);
        assert_eq!(spans.defs.len(), 3);
        assert_eq!(spans.slice(spans.defs[0].var), Some("Root"));
        assert_eq!(
            spans.slice(spans.defs[0].edges[0].expr),
            Some("paper.(a|b)")
        );
        assert_eq!(
            spans.slice(spans.defs[0].edges[0].entry),
            Some("paper.(a|b) -> X")
        );
        assert_eq!(spans.slice(spans.defs[0].edges[1].expr), Some("c"));
        assert_eq!(spans.slice(spans.defs[1].whole), Some("X = 1"));
        // Variable first-occurrence spans.
        let y = q.var_by_name("Y").unwrap();
        assert_eq!(spans.slice(spans.var_decls[y.index()]), Some("Y"));
    }

    #[test]
    fn top_level_branch_spans_recorded() {
        let p = pool();
        let src = "SELECT X WHERE Root = [a.b | c.d | e -> X]";
        let q = parse_query(src, &p).unwrap();
        let spans = q.spans().unwrap();
        let branches = &spans.defs[0].edges[0].branches;
        let texts: Vec<_> = branches.iter().map(|b| spans.slice(*b).unwrap()).collect();
        assert_eq!(texts, ["a.b", "c.d", "e"]);
    }

    #[test]
    fn programmatic_rewrites_drop_spans() {
        let p = pool();
        let q = parse_query("SELECT X WHERE Root = [a -> X]", &p).unwrap();
        assert!(q.spans().is_some());
        let q2 = q.with_def_replaced(0, q.defs()[0].1.clone());
        assert!(q2.spans().is_none());
    }
}
