//! Query classification along the axes of Table 2.
//!
//! * **Join free**: no variable is referred to multiple times and no
//!   variable transitively refers to itself.
//! * **Bounded joins**: the number of join variables is ≤ B.
//! * **Constant labels**: every edge expression is a single constant label.
//! * **Constant suffix**: every edge expression is `R.l` for a constant
//!   label `l` (every word of the language ends with the same label).
//! * **Projection free**: every variable occurs in the SELECT clause.

use std::collections::HashSet;

use ssd_automata::{LabelAtom, Regex};
use ssd_base::VarId;

use crate::pattern::{EdgeExpr, PatDef, Query};

/// The classification of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryClass {
    /// Variables referred to multiple times or lying on a reference cycle.
    pub join_vars: Vec<VarId>,
    /// Every edge expression is one constant label.
    pub constant_labels: bool,
    /// Every edge expression has a constant-label suffix.
    pub constant_suffix: bool,
    /// All variables occur in the SELECT clause.
    pub projection_free: bool,
    /// Whether any label variables occur.
    pub has_label_vars: bool,
}

impl QueryClass {
    /// Classifies `q`.
    pub fn of(q: &Query) -> QueryClass {
        let mut refs = vec![0usize; q.num_vars()];
        for (_, def) in q.defs() {
            match def {
                PatDef::ValueVar(vv) => refs[vv.index()] += 1,
                PatDef::Value(_) => {}
                PatDef::Unordered(es) | PatDef::Ordered(es) => {
                    for e in es {
                        refs[e.target.index()] += 1;
                        if let EdgeExpr::LabelVar(lv) = e.expr {
                            refs[lv.index()] += 1;
                        }
                    }
                }
            }
        }

        // Cycle detection on the refers-to graph of node variables.
        let mut on_cycle: HashSet<VarId> = HashSet::new();
        for v in q.vars() {
            if reaches_itself(q, v) {
                on_cycle.insert(v);
            }
        }

        let mut join_vars: Vec<VarId> = q
            .vars()
            .filter(|v| refs[v.index()] >= 2 || on_cycle.contains(v))
            .collect();
        join_vars.dedup();

        let mut constant_labels = true;
        let mut constant_suffix = true;
        let mut has_label_vars = false;
        for (_, def) in q.defs() {
            for e in def.edges() {
                match &e.expr {
                    EdgeExpr::LabelVar(_) => {
                        has_label_vars = true;
                        constant_labels = false;
                        constant_suffix = false;
                    }
                    EdgeExpr::Regex(r) => {
                        if !matches!(r, Regex::Atom(LabelAtom::Label(_))) {
                            constant_labels = false;
                        }
                        if constant_label_suffix(r).is_none() {
                            constant_suffix = false;
                        }
                    }
                }
            }
        }

        let select: HashSet<VarId> = q.select().iter().copied().collect();
        let projection_free = q.vars().all(|v| select.contains(&v));

        QueryClass {
            join_vars,
            constant_labels,
            constant_suffix,
            projection_free,
            has_label_vars,
        }
    }

    /// Whether the query is join-free.
    pub fn join_free(&self) -> bool {
        self.join_vars.is_empty()
    }

    /// Whether the query has at most `b` join variables.
    pub fn bounded_joins(&self, b: usize) -> bool {
        self.join_vars.len() <= b
    }
}

/// Whether node variable `v` transitively refers to itself.
fn reaches_itself(q: &Query, v: VarId) -> bool {
    let mut stack: Vec<VarId> = referees(q, v);
    let mut seen: HashSet<VarId> = stack.iter().copied().collect();
    while let Some(w) = stack.pop() {
        if w == v {
            return true;
        }
        for u in referees(q, w) {
            if seen.insert(u) {
                stack.push(u);
            }
        }
    }
    false
}

/// The variables `v` directly refers to (RHS of its definition).
fn referees(q: &Query, v: VarId) -> Vec<VarId> {
    match q.def(v) {
        None => Vec::new(),
        Some(PatDef::Value(_)) => Vec::new(),
        Some(PatDef::ValueVar(vv)) => vec![*vv],
        Some(PatDef::Unordered(es)) | Some(PatDef::Ordered(es)) => {
            let mut out = Vec::new();
            for e in es {
                out.push(e.target);
                if let EdgeExpr::LabelVar(lv) = e.expr {
                    out.push(lv);
                }
            }
            out
        }
    }
}

/// The constant last label of `r`'s language, if every word ends with the
/// same constant label.
pub fn constant_label_suffix(r: &Regex<LabelAtom>) -> Option<LabelAtom> {
    let lasts = last_atoms(r)?;
    let mut iter = lasts.into_iter();
    let first = iter.next()?;
    if !matches!(first, LabelAtom::Label(_)) {
        return None;
    }
    iter.next().is_none().then_some(first)
}

/// The set of atoms that can end a word, or `None` for ∅/{ε} oddities.
fn last_atoms(r: &Regex<LabelAtom>) -> Option<HashSet<LabelAtom>> {
    match r {
        Regex::Empty | Regex::Epsilon => Some(HashSet::new()),
        Regex::Atom(a) => Some([*a].into_iter().collect()),
        Regex::Star(x) | Regex::Plus(x) | Regex::Opt(x) => last_atoms(x),
        Regex::Alt(parts) => {
            let mut out = HashSet::new();
            for p in parts {
                out.extend(last_atoms(p)?);
            }
            Some(out)
        }
        Regex::Concat(parts) => {
            let mut out = HashSet::new();
            for p in parts.iter().rev() {
                out.extend(last_atoms(p)?);
                if !p.nullable() {
                    return Some(out);
                }
            }
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ssd_base::SharedInterner;

    fn classify(src: &str) -> QueryClass {
        let pool = SharedInterner::new();
        QueryClass::of(&parse_query(src, &pool).unwrap())
    }

    #[test]
    fn join_free_query() {
        let c = classify(
            r#"SELECT X1 WHERE Root = [paper -> X1];
               X1 = [author -> X2]; X2 = "Vianu""#,
        );
        assert!(c.join_free());
        assert!(c.constant_labels);
        assert!(c.constant_suffix);
        assert!(!c.projection_free);
    }

    #[test]
    fn node_join_detected() {
        let c = classify("SELECT X WHERE Root = {a -> &X, b -> &X}; &X = 1");
        assert!(!c.join_free());
        assert_eq!(c.join_vars.len(), 1);
        assert!(c.bounded_joins(1));
        assert!(!c.bounded_joins(0));
    }

    #[test]
    fn value_join_detected() {
        let c = classify("SELECT V WHERE Root = {a -> X, b -> Y}; X = V; Y = V");
        assert!(!c.join_free());
    }

    #[test]
    fn label_join_detected() {
        let c = classify("SELECT L WHERE Root = {L -> X}; X = {L -> Y}");
        assert!(!c.join_free());
        assert!(c.has_label_vars);
    }

    #[test]
    fn single_label_var_is_join_free() {
        let c = classify("SELECT L WHERE Root = {L -> X}");
        assert!(c.join_free());
        assert!(c.has_label_vars);
        assert!(!c.constant_labels);
    }

    #[test]
    fn cycle_is_a_join() {
        let c = classify("SELECT X WHERE Root = {a -> &X}; &X = {b -> &X}");
        assert!(!c.join_free());
    }

    #[test]
    fn constant_suffix_classification() {
        // _*.name has constant suffix `name`.
        let c = classify("SELECT X WHERE Root = {_*.name -> X}");
        assert!(!c.constant_labels);
        assert!(c.constant_suffix);
        // (a|b) has two possible last labels.
        let c2 = classify("SELECT X WHERE Root = {(a|b) -> X}");
        assert!(!c2.constant_suffix);
        // a.(b|c).d ends with d.
        let c3 = classify("SELECT X WHERE Root = {a.(b|c).d -> X}");
        assert!(c3.constant_suffix);
        // a._ ends with the wildcard: not constant.
        let c4 = classify("SELECT X WHERE Root = {a._ -> X}");
        assert!(!c4.constant_suffix);
        // a.b* : b* is nullable so last can be a or b.
        let c5 = classify("SELECT X WHERE Root = {a.b* -> X}");
        assert!(!c5.constant_suffix);
    }

    #[test]
    fn projection_free_query() {
        let c = classify("SELECT Root, X WHERE Root = {a -> X}");
        assert!(c.projection_free);
    }
}
