//! Selection queries over semistructured data (Milo & Suciu, PODS 1999,
//! §2): patterns with regular path expressions, node/label/value
//! variables, `SELECT … WHERE` syntax, classification along the axes of
//! Table 2, and a reference evaluator implementing Definitions 2.2/2.3.

#![deny(missing_docs)]

pub mod binding;
pub mod classify;
pub mod eval;
pub mod parser;
pub mod pattern;

pub use binding::{Binding, Bound};
pub use classify::QueryClass;
pub use eval::{evaluate, is_nonempty, select_results};
pub use parser::parse_query;
pub use pattern::{DefSpans, EdgeExpr, EdgeSpans, PatDef, PatEdge, Query, QuerySpans, VarKind};
