//! Variable bindings produced by query evaluation.

use ssd_base::{LabelId, OidId, VarId};
use ssd_model::Value;

/// What a variable is bound to.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Bound {
    /// A node of the data graph.
    Node(OidId),
    /// An edge label.
    Label(LabelId),
    /// An atomic value.
    Value(Value),
}

/// A (partial) binding of query variables.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Binding {
    slots: Vec<Option<Bound>>,
}

impl Binding {
    /// An empty binding for `n` variables.
    pub fn new(n: usize) -> Binding {
        Binding {
            slots: vec![None; n],
        }
    }

    /// The binding of `v`, if set.
    pub fn get(&self, v: VarId) -> Option<&Bound> {
        self.slots[v.index()].as_ref()
    }

    /// Binds `v`; returns `false` (and leaves the binding unchanged) if `v`
    /// is already bound to a different value.
    pub fn bind(&mut self, v: VarId, b: Bound) -> bool {
        match &self.slots[v.index()] {
            Some(existing) => *existing == b,
            None => {
                self.slots[v.index()] = Some(b);
                true
            }
        }
    }

    /// Removes the binding of `v` (for backtracking).
    pub fn unbind(&mut self, v: VarId) {
        self.slots[v.index()] = None;
    }

    /// Whether every variable is bound.
    pub fn is_total(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// Projects onto `vars`, producing a canonical tuple.
    pub fn project(&self, vars: &[VarId]) -> Vec<Option<Bound>> {
        vars.iter().map(|v| self.slots[v.index()].clone()).collect()
    }

    /// The full slot vector (one entry per variable).
    pub fn slots(&self) -> &[Option<Bound>] {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_conflict() {
        let mut b = Binding::new(2);
        assert!(b.bind(VarId(0), Bound::Node(OidId(1))));
        assert!(b.bind(VarId(0), Bound::Node(OidId(1)))); // same value ok
        assert!(!b.bind(VarId(0), Bound::Node(OidId(2)))); // conflict
        assert!(!b.is_total());
        assert!(b.bind(VarId(1), Bound::Value(Value::Int(3))));
        assert!(b.is_total());
    }

    #[test]
    fn unbind_for_backtracking() {
        let mut b = Binding::new(1);
        b.bind(VarId(0), Bound::Label(LabelId(5)));
        b.unbind(VarId(0));
        assert!(b.get(VarId(0)).is_none());
        assert!(b.bind(VarId(0), Bound::Label(LabelId(6))));
    }

    #[test]
    fn projection() {
        let mut b = Binding::new(3);
        b.bind(VarId(2), Bound::Node(OidId(9)));
        let p = b.project(&[VarId(2), VarId(0)]);
        assert_eq!(p, vec![Some(Bound::Node(OidId(9))), None]);
    }
}
