//! Feedback queries (Milo & Suciu, PODS 1999, Section 4.1).
//!
//! Given a query `Q` and a schema `S`, the *feedback query* `Q'` replaces
//! each path expression `Rᵢ` with the minimal `Rᵢ'` such that (a) `Q` and
//! `Q'` are equivalent on all instances of `S`, (b) `lang(Rᵢ') ⊆
//! lang(Rᵢ)`, and (c) `Rᵢ'` is smallest among such rewritings
//! (Proposition 4.1: computable in PTIME). The user learns which parts of
//! their path expressions were redundant or over-general.
//!
//! Computation: for each definition, build the generalized trace-product
//! automaton (start types = globally satisfiable types of the definition's
//! variable, leaf predicate = bottom-up feasible sets), trim it, project
//! segment `i` as the label language between the `i−1`-st and `i`-th
//! markers, minimize, and convert back to a regular expression.

#![deny(missing_docs)]

use std::collections::BTreeSet;

use ssd_automata::dfa::{determinize, minimize};
use ssd_automata::ops::trim;
use ssd_automata::regexgen::nfa_to_regex;
use ssd_automata::{LabelAtom, Nfa, Regex};
use ssd_base::{Error, Result, TypeIdx, VarId};
use ssd_core::feas::{self, Constraints};
use ssd_core::marker::TraceAtom;
use ssd_core::ptraces::def_trace_automaton;
use ssd_query::{EdgeExpr, PatDef, PatEdge, Query, QueryClass};
use ssd_schema::{Schema, SchemaClass, TypeGraph};

/// Computes the feedback query of `q` against `s` (Proposition 4.1).
///
/// Requires a join-free query whose collection definitions are ordered and
/// regex-only, over an ordered schema — the class for which the paper
/// states the PTIME result (its Section 4.1 restriction plus the
/// "straightforward" multi-definition extension).
pub fn feedback_query(q: &Query, s: &Schema) -> Result<Query> {
    let qclass = QueryClass::of(q);
    if !qclass.join_free() {
        return Err(Error::unsupported(
            "feedback queries need join-free queries",
        ));
    }
    let sclass = SchemaClass::of(s);
    if !sclass.ordered {
        return Err(Error::unsupported("feedback queries need ordered schemas"));
    }
    let tg = TypeGraph::new(s);
    // Bottom-up feasible sets (leaf predicate).
    let local = feas::analyze(q, s, &tg, &Constraints::none())?;

    let mut out = q.clone();
    for (di, (v, def)) in q.defs().iter().enumerate() {
        let PatDef::Ordered(entries) = def else {
            continue; // value definitions carry no path expressions
        };
        let mut regex_entries: Vec<(Regex<LabelAtom>, VarId)> = Vec::new();
        for e in entries {
            match &e.expr {
                EdgeExpr::Regex(r) => regex_entries.push((r.clone(), e.target)),
                EdgeExpr::LabelVar(_) => {
                    return Err(Error::unsupported(
                        "feedback queries support regex entries only",
                    ))
                }
            }
        }
        // Globally satisfiable types of the definition's variable.
        let start_types: Vec<TypeIdx> = s
            .types()
            .filter(|&t| {
                feas::analyze(q, s, &tg, &Constraints::none().pin_type(*v, t))
                    .map(|a| a.satisfiable)
                    .unwrap_or(false)
            })
            .collect();
        let trace = def_trace_automaton(s, &tg, *v, &start_types, &regex_entries, &|tv, ty| {
            local.feas[tv.index()].contains(&ty)
        });
        let trace = trim(&trace);

        let mut new_entries = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let prev_var = if i == 0 { *v } else { entries[i - 1].target };
            let lang = segment_language(&trace, prev_var, e.target);
            let small = minimize(&determinize(&lang)).to_nfa();
            let re = nfa_to_regex(&trim(&small));
            new_entries.push(PatEdge {
                expr: EdgeExpr::Regex(re),
                target: e.target,
            });
        }
        out = out.with_def_replaced(di, PatDef::Ordered(new_entries));
    }
    Ok(out)
}

/// Extracts segment language: label words readable between the marker of
/// `prev_var` and the marker of `end_var` in the (trimmed) trace
/// automaton.
pub fn segment_language(trace: &Nfa<TraceAtom>, prev_var: VarId, end_var: VarId) -> Nfa<LabelAtom> {
    let n = trace.num_states();
    // Fresh start state n; copy label transitions.
    let mut out = Nfa::with_states(n + 1, n);
    let mut starts: BTreeSet<usize> = BTreeSet::new();
    for (src, atom, dst) in trace.all_edges() {
        match atom {
            TraceAtom::Label(l) => out.add_transition(src, LabelAtom::Label(*l), dst),
            TraceAtom::AnyLabel => out.add_transition(src, LabelAtom::Any, dst),
            TraceAtom::Mark(v, _) if *v == prev_var => {
                starts.insert(dst);
            }
            TraceAtom::Mark(_, _) => {}
        }
    }
    for (src, atom, _dst) in trace.all_edges() {
        if let TraceAtom::Mark(v, _) = atom {
            if *v == end_var {
                out.set_accepting(src, true);
            }
        }
    }
    // Wire the fresh start with copies of the start states' label edges,
    // and make it accepting if a start state is directly accepting (empty
    // segment — cannot happen for non-ε path languages, but harmless).
    for &st in &starts {
        for (atom, dst) in trace.edges(st).to_vec() {
            match atom {
                TraceAtom::Label(l) => out.add_transition(n, LabelAtom::Label(l), dst),
                TraceAtom::AnyLabel => out.add_transition(n, LabelAtom::Any, dst),
                TraceAtom::Mark(_, _) => {}
            }
        }
        if out.is_accepting(st) {
            out.set_accepting(n, true);
        }
    }
    trim(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssd_automata::dfa::{equivalent, included};
    use ssd_automata::display::regex_to_string;
    use ssd_automata::glushkov;
    use ssd_base::SharedInterner;
    use ssd_query::parse_query;
    use ssd_schema::parse_schema;

    const PAPER_SCHEMA: &str = r#"
        DOCUMENT = [(paper->PAPER)*];
        PAPER = [title->TITLE.(author->AUTHOR)*];
        AUTHOR = [name->NAME.email->EMAIL];
        NAME = [firstname->FIRSTNAME.lastname->LASTNAME];
        TITLE = string; FIRSTNAME = string;
        LASTNAME = string; EMAIL = string
    "#;

    fn show_entry(q: &Query, def_idx: usize, entry_idx: usize, pool: &SharedInterner) -> String {
        let (_, def) = &q.defs()[def_idx];
        match &def.edges()[entry_idx].expr {
            EdgeExpr::Regex(r) => regex_to_string(r, &mut |a| match a {
                LabelAtom::Label(l) => pool.resolve(*l),
                LabelAtom::Any => "_".to_owned(),
            }),
            EdgeExpr::LabelVar(_) => unreachable!(),
        }
    }

    fn entry_regex(q: &Query, def_idx: usize, entry_idx: usize) -> Regex<LabelAtom> {
        let (_, def) = &q.defs()[def_idx];
        match &def.edges()[entry_idx].expr {
            EdgeExpr::Regex(r) => r.clone(),
            EdgeExpr::LabelVar(_) => unreachable!(),
        }
    }

    #[test]
    fn papers_worked_example() {
        // Q = SELECT X3 WHERE Root=[paper.author→X1];
        //     X1=[_*.name._+ → X2, _*.email → X3]; X2="Gray"
        // Feedback: the leading/trailing _* are redundant; name's tail can
        // only be firstname|lastname.
        let pool = SharedInterner::new();
        let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
        let q = parse_query(
            r#"SELECT X3
               WHERE Root = [paper.author -> X1];
                     X1 = [_*.name._+ -> X2, _*.email -> X3];
                     X2 = "Gray""#,
            &pool,
        )
        .unwrap();
        let fb = feedback_query(&q, &s).unwrap();

        // Root entry stays paper.author (already minimal).
        let root_entry = entry_regex(&fb, 0, 0);
        let orig = entry_regex(&q, 0, 0);
        assert!(equivalent(
            &glushkov::build(&root_entry),
            &glushkov::build(&orig)
        ));

        // X1's first entry becomes name.(firstname|lastname).
        let want =
            ssd_automata::parser::parse_path_regex("name.(firstname|lastname)", &pool).unwrap();
        let got = entry_regex(&fb, 1, 0);
        assert!(
            equivalent(&glushkov::build(&got), &glushkov::build(&want)),
            "got {}",
            show_entry(&fb, 1, 0, &pool)
        );

        // X1's second entry becomes plain email.
        let want2 = ssd_automata::parser::parse_path_regex("email", &pool).unwrap();
        let got2 = entry_regex(&fb, 1, 1);
        assert!(
            equivalent(&glushkov::build(&got2), &glushkov::build(&want2)),
            "got {}",
            show_entry(&fb, 1, 1, &pool)
        );
    }

    #[test]
    fn feedback_is_a_sublanguage() {
        let pool = SharedInterner::new();
        let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
        let q = parse_query("SELECT X WHERE Root = [_+ -> P]; P = [_._ -> X]", &pool).unwrap();
        let fb = feedback_query(&q, &s).unwrap();
        for (di, (_, def)) in q.defs().iter().enumerate() {
            for (ei, _) in def.edges().iter().enumerate() {
                let orig = glushkov::build(&entry_regex(&q, di, ei));
                let new = glushkov::build(&entry_regex(&fb, di, ei));
                assert!(included(&new, &orig), "def {di} entry {ei}");
            }
        }
    }

    #[test]
    fn unsatisfiable_query_feeds_back_empty_languages() {
        let pool = SharedInterner::new();
        let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
        let q = parse_query("SELECT X WHERE Root = [isbn -> X]", &pool).unwrap();
        let fb = feedback_query(&q, &s).unwrap();
        let r = entry_regex(&fb, 0, 0);
        assert!(r.is_empty_lang());
    }

    #[test]
    fn feedback_preserves_results_on_witnesses() {
        use ssd_query::select_results;
        let pool = SharedInterner::new();
        let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
        let q = parse_query(
            "SELECT X WHERE Root = [paper -> P]; P = [_*.lastname -> X]",
            &pool,
        )
        .unwrap();
        let fb = feedback_query(&q, &s).unwrap();
        // On a concrete conforming document, results agree.
        let g = ssd_model::parse_data_graph(
            r#"o1 = [paper -> o2];
               o2 = [title -> o3, author -> o4];
               o3 = "t";
               o4 = [name -> o5, email -> o6];
               o5 = [firstname -> o7, lastname -> o8];
               o6 = "e"; o7 = "J"; o8 = "S""#,
            &pool,
        )
        .unwrap();
        assert_eq!(select_results(&q, &g), select_results(&fb, &g));
        assert!(!select_results(&fb, &g).is_empty());
    }

    #[test]
    fn rejects_out_of_class_inputs() {
        let pool = SharedInterner::new();
        let s = parse_schema("T = {a->U.b->V}; U = int; V = int", &pool).unwrap();
        let q = parse_query("SELECT X WHERE Root = {a -> X}", &pool).unwrap();
        assert!(feedback_query(&q, &s).is_err()); // unordered schema
        let s2 = parse_schema("T = [a->&U.b->&U]; &U = int", &pool).unwrap();
        let q2 = parse_query("SELECT X WHERE Root = [a -> &X, b -> &X]", &pool).unwrap();
        assert!(feedback_query(&q2, &s2).is_err()); // joins
    }
}
