//! Experiment EVICT.r1: cache eviction under memory pressure.
//!
//! A fixed cycle of distinct (schema, query) pairs is answered
//! repeatedly through one session, once with unlimited caches and once
//! under `SessionLimits` ceilings tight enough that the working set
//! cannot be fully retained. Measured:
//!
//! * **throughput** — wall-clock per full cycle, capped vs unlimited
//!   (the price of recomputing evicted entries);
//! * **warm-hit ratio** — the feas-memo and type-graph hit ratios of
//!   each configuration, printed as a report after timing;
//! * **invariance** — every verdict under the caps is asserted equal to
//!   the unlimited session's before timing (eviction must never change
//!   an answer), and the capped session's `evicted` counter is asserted
//!   nonzero (the ceilings really bind).
//!
//! `SSD_BENCH_QUICK=1` shrinks the cycle and sample count for CI smoke
//! runs; `SSD_BENCH_TELEMETRY` writes the timing rows to the bench
//! telemetry JSON.

use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::workload;
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::{Session, SessionLimits};
use ssd_query::Query;
use ssd_schema::Schema;

fn quick() -> bool {
    std::env::var_os("SSD_BENCH_QUICK").is_some()
}

/// Distinct workloads forming one repeated cycle (distinct schemas, so
/// each carries its own type graph and feas entries).
fn cycle(n: usize) -> Vec<(Schema, Query)> {
    (0..n)
        .map(|i| {
            let (s, _tg, q) = workload(4200 + i as u64, 8 + (i % 5), 1 + (i % 3), false, false);
            (s, q)
        })
        .collect()
}

/// Ceilings sized so roughly half the cycle's working set fits.
fn binding_limits() -> SessionLimits {
    SessionLimits::unlimited()
        .max_type_graph_bytes(16 * 1024)
        .max_feas_memo_entries(4)
        .max_automata_entries(256)
}

fn run_cycle(sess: &Session, pairs: &[(Schema, Query)]) -> usize {
    pairs
        .iter()
        .filter(|(s, q)| sess.satisfiable(q, s).unwrap().satisfiable)
        .count()
}

fn eviction_throughput(c: &mut Criterion) {
    let n = if quick() { 6 } else { 16 };
    let pairs = cycle(n);

    // Invariance gate: a capped session must agree with an unlimited one
    // on every pair, cold and warm.
    let capped = Session::with_limits(binding_limits());
    let free = Session::new();
    for round in 0..3 {
        for (s, q) in &pairs {
            assert_eq!(
                capped.satisfiable(q, s).unwrap(),
                free.satisfiable(q, s).unwrap(),
                "round {round}: eviction changed a verdict"
            );
        }
    }
    assert!(
        capped.stats().evicted > 0 || capped.stats().automata.evicted > 0,
        "the ceilings are sized to bind on this cycle: {}",
        capped.stats()
    );

    let mut g = c.benchmark_group("eviction/satisfiable_cycle");
    g.sample_size(if quick() { 5 } else { 20 });
    let unlimited = Session::new();
    g.bench_with_input(BenchmarkId::new("unlimited", n), &n, |b, _| {
        b.iter(|| run_cycle(&unlimited, &pairs))
    });
    let bounded = Session::with_limits(binding_limits());
    g.bench_with_input(BenchmarkId::new("capped", n), &n, |b, _| {
        b.iter(|| run_cycle(&bounded, &pairs))
    });
    g.finish();

    // Warm-hit-ratio report (after timing, so the counters reflect the
    // measured traffic).
    for (name, sess) in [("unlimited", &unlimited), ("capped", &bounded)] {
        let st = sess.stats();
        println!(
            "eviction report [{name}]: feas-memo hit ratio {:.1}%, type-graph hit ratio {:.1}%, \
             {} session entries evicted, {} automata entries evicted, ~{} KiB type graphs retained",
            st.feas_memo_table.hit_ratio() * 100.0,
            st.type_graph_table.hit_ratio() * 100.0,
            st.evicted,
            st.automata.evicted,
            st.type_graph_bytes / 1024,
        );
    }
}

criterion_group!(benches, eviction_throughput);
criterion_main!(benches);
