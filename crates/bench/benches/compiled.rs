//! Experiment COMPILED.r1: dense-table execution vs the interpreter.
//!
//! Three claims are measured, each asserted for verdict identity before
//! any timing:
//!
//! * **product emptiness** — the fused pair-product kernel
//!   ([`compiled::is_empty_product_compiled`]) against the interpreted
//!   engine it replaced as the cache default: materialize the NFA
//!   product with [`product::intersect`] and run reachability
//!   ([`ops::is_empty_lang`]). Median speedup is published as
//!   `compiled_product_speedup` (target ≥5×);
//! * **membership simulation** — table-walking a word batch through
//!   [`CompiledDfa::accepts`] against the NFA subset simulation the
//!   interpreted conformance path uses. Published as
//!   `compiled_conformance_speedup` (target ≥3×);
//! * **end-to-end conformance** — `conforms` (compiled fast path) vs
//!   `conforms_interpreted` on the paper's bibliography corpus, cold
//!   tables included; recorded for context, not gated.
//!
//! Workload regexes come from the shared `regexgen_prop` generator at
//! fixed seeds, filtered to pairs whose product is big enough to time.

use ssd_automata::compiled::{self, compile, CompiledDfa};
use ssd_automata::dfa::{determinize, minimize};
use ssd_automata::{glushkov, ops, product, LabelAtom, Nfa, Regex};
use ssd_base::rng::{Rng, StdRng};
use ssd_base::{LabelId, SharedInterner};
use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::summary::set_metric;
use ssd_bench::{criterion_group, criterion_main};
use ssd_gen::corpora::{bibliography, PAPER_SCHEMA};
use ssd_model::parse_data_graph;
use ssd_schema::{conforms, conforms_interpreted, parse_schema};

fn quick() -> bool {
    std::env::var_os("SSD_BENCH_QUICK").is_some()
}

/// The shared random-regex shape (4 labels + wildcard, bounded depth).
fn random_regex(rng: &mut StdRng, depth: usize) -> Regex<LabelAtom> {
    let leaf = depth == 0 || rng.gen_bool(0.3);
    if leaf {
        return match rng.gen_range(0..6u32) {
            0 => Regex::Epsilon,
            1 => Regex::atom(LabelAtom::Any),
            n => Regex::atom(LabelAtom::Label(LabelId(n - 2))),
        };
    }
    match rng.gen_range(0..5u32) {
        0 => {
            let n = rng.gen_range(2..=3usize);
            Regex::concat((0..n).map(|_| random_regex(rng, depth - 1)).collect())
        }
        1 => {
            let n = rng.gen_range(2..=3usize);
            Regex::alt((0..n).map(|_| random_regex(rng, depth - 1)).collect())
        }
        2 => Regex::star(random_regex(rng, depth - 1)),
        3 => Regex::plus(random_regex(rng, depth - 1)),
        _ => Regex::opt(random_regex(rng, depth - 1)),
    }
}

struct Pair {
    n1: Nfa<LabelAtom>,
    n2: Nfa<LabelAtom>,
    c1: CompiledDfa<LabelId>,
    c2: CompiledDfa<LabelId>,
}

/// Deterministic regex pairs whose compiled product has at least
/// `min_product` states, so a timed iteration does real BFS work.
fn product_pairs(count: usize, min_product: u32) -> Vec<Pair> {
    let mut out = Vec::new();
    let mut seed = 0u64;
    while out.len() < count {
        seed += 1;
        assert!(seed < 10_000, "regex generator stopped producing big pairs");
        let mut rng = StdRng::seed_from_u64(seed);
        let r1 = random_regex(&mut rng, 5);
        let r2 = random_regex(&mut rng, 5);
        let (n1, n2) = (glushkov::build(&r1), glushkov::build(&r2));
        let c1 = compile(&minimize(&determinize(&n1)));
        let c2 = compile(&minimize(&determinize(&n2)));
        if c1.num_states() * c2.num_states() < min_product {
            continue;
        }
        out.push(Pair { n1, n2, c1, c2 });
    }
    out
}

/// The interpreted product-emptiness engine the compiled kernel replaced:
/// materialize the NFA intersection, then decide reachability.
fn interpreted_product_empty(n1: &Nfa<LabelAtom>, n2: &Nfa<LabelAtom>) -> bool {
    ops::is_empty_lang(&product::intersect(n1, n2, LabelAtom::meet))
}

fn product_emptiness(c: &mut Criterion) {
    let pairs = product_pairs(if quick() { 4 } else { 12 }, 60);
    for p in &pairs {
        assert_eq!(
            compiled::is_empty_product_compiled(&p.c1, &p.c2),
            interpreted_product_empty(&p.n1, &p.n2),
            "engines disagree before timing"
        );
    }
    let mut g = c.benchmark_group("compiled/product_emptiness");
    g.sample_size(if quick() { 10 } else { 20 });
    g.bench_with_input(
        BenchmarkId::from_parameter("interpreted"),
        &pairs,
        |b, ps| {
            b.iter(|| {
                ps.iter()
                    .filter(|p| interpreted_product_empty(&p.n1, &p.n2))
                    .count()
            })
        },
    );
    g.bench_with_input(BenchmarkId::from_parameter("compiled"), &pairs, |b, ps| {
        b.iter(|| {
            ps.iter()
                .filter(|p| compiled::is_empty_product_compiled(&p.c1, &p.c2))
                .count()
        })
    });
    g.finish();
    publish_speedup(
        "compiled/product_emptiness",
        "compiled_product_speedup",
        "product emptiness",
    );
}

/// Random words over the generator alphabet, biased long enough that the
/// per-word cost is the simulation loop, not call overhead.
fn word_batch(rng: &mut StdRng, count: usize) -> Vec<Vec<LabelId>> {
    (0..count)
        .map(|_| {
            let len = rng.gen_range(4..24usize);
            (0..len).map(|_| LabelId(rng.gen_range(0..6u32))).collect()
        })
        .collect()
}

fn membership_simulation(c: &mut Criterion) {
    let pairs = product_pairs(if quick() { 2 } else { 6 }, 60);
    let mut rng = StdRng::seed_from_u64(42);
    let words = word_batch(&mut rng, if quick() { 64 } else { 256 });
    let automata: Vec<&Pair> = pairs.iter().collect();
    for p in &automata {
        for w in &words {
            let syms: Vec<LabelId> = w.clone();
            assert_eq!(
                p.c1.accepts(syms.iter().copied()),
                p.n1.accepts(w),
                "membership engines disagree before timing"
            );
        }
    }
    let mut g = c.benchmark_group("compiled/membership");
    g.sample_size(if quick() { 10 } else { 20 });
    g.bench_with_input(
        BenchmarkId::from_parameter("nfa_subset"),
        &words,
        |b, ws| {
            b.iter(|| {
                automata
                    .iter()
                    .map(|p| ws.iter().filter(|w| p.n1.accepts(w)).count())
                    .sum::<usize>()
            })
        },
    );
    g.bench_with_input(BenchmarkId::from_parameter("compiled"), &words, |b, ws| {
        b.iter(|| {
            automata
                .iter()
                .map(|p| {
                    ws.iter()
                        .filter(|w| p.c1.accepts(w.iter().copied()))
                        .count()
                })
                .sum::<usize>()
        })
    });
    g.finish();
    publish_speedup(
        "compiled/membership",
        "compiled_conformance_speedup",
        "membership simulation",
    );
}

fn end_to_end_conformance(c: &mut Criterion) {
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let papers = if quick() { 40 } else { 160 };
    let data = parse_data_graph(&bibliography(papers, 2), &pool).unwrap();
    assert_eq!(
        conforms(&data, &s).is_some(),
        conforms_interpreted(&data, &s).is_some(),
        "conformance engines disagree before timing"
    );
    let mut g = c.benchmark_group("compiled/conformance_e2e");
    g.sample_size(if quick() { 10 } else { 20 });
    g.bench_with_input(
        BenchmarkId::from_parameter("interpreted"),
        &papers,
        |b, _| b.iter(|| conforms_interpreted(&data, &s).is_some()),
    );
    g.bench_with_input(BenchmarkId::from_parameter("compiled"), &papers, |b, _| {
        b.iter(|| conforms(&data, &s).is_some())
    });
    g.finish();
    let recs = ssd_bench::harness::records();
    let median = |name: &str| {
        recs.iter()
            .find(|r| r.label == format!("compiled/conformance_e2e/{name}"))
            .map(|r| r.median_ns)
    };
    if let (Some(interp), Some(comp)) = (median("interpreted"), median("compiled")) {
        let ratio = interp / comp;
        set_metric("compiled_conformance_e2e_speedup", ratio);
        println!(
            "compiled conformance e2e: {comp:.0} ns vs {interp:.0} ns interpreted ({ratio:.2}x)"
        );
    }
}

/// Reads back the group's `interpreted`-vs-`compiled` medians (the
/// membership group labels its baseline `nfa_subset`) and publishes the
/// speedup ratio into the bench summary.
fn publish_speedup(group: &str, metric: &str, what: &str) {
    let recs = ssd_bench::harness::records();
    let median = |name: &str| {
        recs.iter()
            .find(|r| r.label == format!("{group}/{name}"))
            .map(|r| r.median_ns)
    };
    let base = median("interpreted").or_else(|| median("nfa_subset"));
    if let (Some(interp), Some(comp)) = (base, median("compiled")) {
        let ratio = interp / comp;
        set_metric(metric, ratio);
        println!("compiled {what}: {comp:.0} ns vs {interp:.0} ns interpreted ({ratio:.2}x)");
    }
}

criterion_group!(
    benches,
    product_emptiness,
    membership_simulation,
    end_to_end_conformance
);
criterion_main!(benches);
