//! Experiment T4.2: the adaptive evaluator A_O vs the naive strategy
//! (Theorem 4.2 + the §4.2 pruning examples). Criterion times both
//! evaluators; the `experiments` binary prints the edge-count tables
//! (the paper's cost function).

use ssd_base::rng::StdRng;
use ssd_base::SharedInterner;
use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::{criterion_group, criterion_main};
use ssd_gen::corpora::{bibliography, PAPER_SCHEMA};
use ssd_gen::data_gen::{sample_instance, DataGenConfig};
use ssd_model::parse_data_graph;
use ssd_optimizer::{evaluate_adaptive, evaluate_naive, CostedGraph, RootQuery};
use ssd_query::parse_query;
use ssd_schema::{parse_schema, TypeGraph};

fn bibliography_scan(c: &mut Criterion) {
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let tg = TypeGraph::new(&s);
    let q = parse_query("SELECT X WHERE Root = [paper.title -> X]", &pool).unwrap();
    let rq = RootQuery::compile(&q).unwrap();

    let mut g = c.benchmark_group("t42/bibliography_titles");
    g.sample_size(20);
    for papers in [10usize, 40, 160] {
        let data = parse_data_graph(&bibliography(papers, 3), &pool).unwrap();
        g.bench_with_input(BenchmarkId::new("naive", papers), &papers, |b, _| {
            b.iter(|| {
                let cg = CostedGraph::new(&data);
                evaluate_naive(&cg, &rq).len()
            })
        });
        g.bench_with_input(BenchmarkId::new("adaptive", papers), &papers, |b, _| {
            b.iter(|| {
                let cg = CostedGraph::new(&data);
                evaluate_adaptive(&cg, &rq, &q, &s, &tg).len()
            })
        });
    }
    g.finish();
}

fn random_dtdish(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(77);
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let tg = TypeGraph::new(&s);
    let q = parse_query("SELECT X WHERE Root = [_*.lastname -> X]", &pool).unwrap();
    let rq = RootQuery::compile(&q).unwrap();
    let data = sample_instance(
        &s,
        &tg,
        &mut rng,
        &DataGenConfig {
            continue_prob: 0.8,
            max_nodes: 2000,
        },
    )
    .unwrap();
    let mut g = c.benchmark_group("t42/wildcard_scan");
    g.sample_size(20);
    g.bench_function("naive", |b| {
        b.iter(|| {
            let cg = CostedGraph::new(&data);
            evaluate_naive(&cg, &rq).len()
        })
    });
    g.bench_function("adaptive", |b| {
        b.iter(|| {
            let cg = CostedGraph::new(&data);
            evaluate_adaptive(&cg, &rq, &q, &s, &tg).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bibliography_scan, random_dtdish);
criterion_main!(benches);
