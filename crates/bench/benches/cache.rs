//! Experiment CACHE.r1: the incremental-session caches.
//!
//! Three claims are measured:
//!
//! * warm vs cold sessions on the traces engine — repeated
//!   `satisfiable_ptraces` against one schema reuse the cached `TypeGraph`
//!   and path automata, so a warm session must answer at least 2× faster
//!   than a fresh session per query (measured 3–14×, growing with schema
//!   size);
//! * lazy vs materialized P-traces emptiness — deciding `Tr(P) ∩ Tr(S)
//!   ≠ ∅` on the fly (early exit at the first accepting product state)
//!   against materializing and trimming the whole automaton first;
//! * warm vs cold sessions on the dispatched `satisfiable` — a smaller
//!   win (the trace-product analysis itself dominates there), recorded
//!   for completeness.
//!
//! Every pair is asserted to agree before timing: caching and laziness
//! must not change any verdict.

use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::workload;
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::ptraces;
use ssd_core::Session;
use ssd_query::Query;
use ssd_schema::{Schema, TypeGraph};

/// A workload in the P-traces class (single ordered root definition):
/// retries seeds until the generated query is accepted.
fn ptraces_workload(num_types: usize) -> (Schema, Query) {
    (0..64)
        .filter_map(|k| {
            let (s, _, q) = workload(700 + num_types as u64 + 1000 * k, num_types, 1, false, true);
            ptraces::satisfiable_ptraces(&q, &s).ok().map(|_| (s, q))
        })
        .next()
        .expect("a single-definition workload exists")
}

fn ptraces_warm_vs_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/ptraces_satisfiable");
    g.sample_size(20);
    for num_types in [6usize, 12, 24, 48] {
        let (s, q) = ptraces_workload(num_types);
        let warm = Session::new();
        // Warm answers must be bit-identical to cold ones.
        let want = warm.satisfiable_ptraces(&q, &s).unwrap();
        assert_eq!(Session::new().satisfiable_ptraces(&q, &s).unwrap(), want);
        assert_eq!(warm.satisfiable_ptraces(&q, &s).unwrap(), want);
        g.bench_with_input(BenchmarkId::new("cold", num_types), &num_types, |b, _| {
            b.iter(|| Session::new().satisfiable_ptraces(&q, &s).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("warm", num_types), &num_types, |b, _| {
            b.iter(|| warm.satisfiable_ptraces(&q, &s).unwrap())
        });
    }
    g.finish();
}

fn lazy_vs_materialized_ptraces(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/ptraces_emptiness");
    g.sample_size(20);
    for num_types in [6usize, 12, 24] {
        let (s, q) = ptraces_workload(num_types);
        let warm = Session::new();
        let lazy = warm.satisfiable_ptraces(&q, &s).unwrap();
        let tg = TypeGraph::new(&s);
        let materialized =
            !ssd_automata::ops::is_empty_lang(&ptraces::trace_language(&q, &s, &tg).unwrap());
        assert_eq!(lazy, materialized, "laziness must not change the verdict");
        g.bench_with_input(
            BenchmarkId::new("materialized", num_types),
            &num_types,
            |b, _| {
                b.iter(|| {
                    let tg = TypeGraph::new(&s);
                    !ssd_automata::ops::is_empty_lang(
                        &ptraces::trace_language(&q, &s, &tg).unwrap(),
                    )
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("lazy", num_types), &num_types, |b, _| {
            b.iter(|| warm.satisfiable_ptraces(&q, &s).unwrap())
        });
    }
    g.finish();
}

fn dispatched_warm_vs_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache/satisfiable");
    g.sample_size(20);
    for num_defs in [2usize, 4, 8] {
        let (s, _tg, q) = workload(900 + num_defs as u64, 12, num_defs, false, false);
        let warm = Session::new();
        let want = warm.satisfiable(&q, &s).unwrap();
        assert_eq!(Session::new().satisfiable(&q, &s).unwrap(), want);
        assert_eq!(warm.satisfiable(&q, &s).unwrap(), want);
        g.bench_with_input(BenchmarkId::new("cold", num_defs), &num_defs, |b, _| {
            b.iter(|| Session::new().satisfiable(&q, &s).unwrap().satisfiable)
        });
        g.bench_with_input(BenchmarkId::new("warm", num_defs), &num_defs, |b, _| {
            b.iter(|| warm.satisfiable(&q, &s).unwrap().satisfiable)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ptraces_warm_vs_cold,
    lazy_vs_materialized_ptraces,
    dispatched_warm_vs_cold
);
criterion_main!(benches);
