//! Experiment T2.np: the NP-complete cells of Table 2 (Theorem 3.1).
//!
//! The 3SAT reduction (unordered rigid types + join-free queries) drives
//! the general solver; runtime should grow super-polynomially with the
//! number of propositional variables/clauses, in contrast with the smooth
//! PTIME sweeps of `table2_ptime.rs`.

use ssd_base::rng::StdRng;
use ssd_base::SharedInterner;
use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::solver;
use ssd_gen::sat3::Sat3;
use ssd_query::parse_query;
use ssd_schema::parse_schema;

fn np_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2/np_3sat_reduction");
    g.sample_size(10);
    for vars in [3usize, 4, 5] {
        let mut rng = StdRng::seed_from_u64(31 + vars as u64);
        let f = Sat3::random(&mut rng, vars, vars + 2);
        let pool = SharedInterner::new();
        let s = parse_schema(&f.schema_text(), &pool).unwrap();
        let q = parse_query(&f.query_text(), &pool).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| solver::solve(&q, &s).satisfiable)
        });
    }
    g.finish();
}

criterion_group!(benches, np_cells);
criterion_main!(benches);
