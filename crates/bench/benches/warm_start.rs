//! Experiment WARM.r1: cold-boot-to-first-verdict with and without a
//! snapshot (the `ssd-snapshot` warm-start store).
//!
//! Three boots are measured end to end — session construction through the
//! first `satisfiable` verdict on a mixed suite:
//!
//! * **cold** — no snapshot: every boot re-derives type graphs, DFAs, and
//!   the feas analysis from scratch;
//! * **warm** — a valid snapshot of a previously warmed session is loaded
//!   first, so the first verdict is answered from the hydrated caches;
//! * **corrupt** — the snapshot file is fully corrupt (header refuses),
//!   so the boot degrades to cold after paying only the rejection cost.
//!
//! The printed summary reports the warm-start speedup and the corrupt
//! overhead against plain cold boot, and asserts the ISSUE floors: warm
//! boot ≥ 5× faster than cold, corrupt-file overhead within 10% of cold.
//! Verdicts are asserted identical across all three boots inside the
//! measured loops.
//!
//! `SSD_BENCH_QUICK=1` shrinks the suite and sample count for CI smoke
//! runs; `SSD_BENCH_TELEMETRY` writes the rows to the bench telemetry
//! JSON.

use std::path::PathBuf;

use ssd_bench::harness::Criterion;
use ssd_bench::workload;
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::Session;
use ssd_query::Query;
use ssd_schema::Schema;

fn quick() -> bool {
    std::env::var_os("SSD_BENCH_QUICK").is_some()
}

/// The boot suite: enough automata/feas work that a cold boot is
/// dominated by derivation, which is exactly what the snapshot saves.
fn suite() -> Vec<(Schema, Query)> {
    // Quick mode keeps the heaviest workload: the speedup floor is about
    // derivation-vs-decode cost, which only shows at realistic sizes.
    let specs: &[(u64, usize, usize)] = if quick() {
        &[(7000, 48, 4)]
    } else {
        &[(7000, 48, 4), (7001, 24, 4), (7002, 24, 2), (7003, 12, 2)]
    };
    specs
        .iter()
        .map(|&(seed, nt, nd)| {
            let (s, _tg, q) = workload(seed, nt, nd, false, false);
            (s, q)
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssd-warm-start-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Boot a fresh session, optionally load `snap`, and answer the whole
/// suite once; verdicts are checked against `want`.
fn boot_to_first_verdict(items: &[(Schema, Query)], snap: Option<&PathBuf>, want: &[bool]) {
    let sess = Session::new();
    if let Some(path) = snap {
        let schemas: Vec<_> = items.iter().map(|(s, _)| s).collect();
        let _ = sess.load_snapshot(path, &schemas);
    }
    for ((s, q), &w) in items.iter().zip(want) {
        assert_eq!(
            sess.satisfiable(q, s).unwrap().satisfiable,
            w,
            "boot verdict diverged"
        );
    }
}

fn warm_start(c: &mut Criterion) {
    let items = suite();
    // Ground truth + the snapshot image, written once up front.
    let src = Session::new();
    let want: Vec<bool> = items
        .iter()
        .map(|(s, q)| src.satisfiable(q, s).unwrap().satisfiable)
        .collect();
    let valid = tmp("warm.snap");
    let schemas: Vec<_> = items.iter().map(|(s, _)| s).collect();
    let bytes = src.save_snapshot(&valid, &schemas).unwrap();
    // A fully corrupt twin: same size, garbage content — the header CRC
    // refuses it outright, so the boot pays only the read + reject.
    let corrupt = tmp("corrupt.snap");
    let garbage: Vec<u8> = (0..bytes)
        .map(|i| (i as u8).wrapping_mul(37) ^ 0x5A)
        .collect();
    std::fs::write(&corrupt, &garbage).unwrap();

    let mut g = c.benchmark_group("warm_start/first_verdict");
    g.sample_size(if quick() { 10 } else { 20 });
    g.bench_function("cold", |b| {
        b.iter(|| boot_to_first_verdict(&items, None, &want))
    });
    g.bench_function("warm", |b| {
        b.iter(|| boot_to_first_verdict(&items, Some(&valid), &want))
    });
    g.bench_function("corrupt", |b| {
        b.iter(|| boot_to_first_verdict(&items, Some(&corrupt), &want))
    });
    g.finish();

    std::fs::remove_file(&valid).ok();
    std::fs::remove_file(&corrupt).ok();

    // Summary + the acceptance floors.
    let recs = ssd_bench::harness::records();
    let median = |label: &str| {
        recs.iter()
            .find(|r| r.label == format!("warm_start/first_verdict/{label}"))
            .map(|r| r.median_ns)
            .expect("bench recorded")
    };
    let (cold, warm, corrupt) = (median("cold"), median("warm"), median("corrupt"));
    let speedup = cold / warm;
    let overhead = corrupt / cold;
    println!(
        "warm_start summary: snapshot {bytes} bytes; cold {cold:.0} ns, warm {warm:.0} ns \
         (speedup {speedup:.2}x, floor 5.00x); corrupt {corrupt:.0} ns (overhead {overhead:.3}x \
         of cold, ceiling 1.10x)"
    );
    assert!(
        speedup >= 5.0,
        "warm boot must be >= 5x faster than cold (got {speedup:.2}x)"
    );
    assert!(
        overhead <= 1.10,
        "corrupt-snapshot boot must stay within 10% of cold (got {overhead:.3}x)"
    );
}

criterion_group!(benches, warm_start);
criterion_main!(benches);
