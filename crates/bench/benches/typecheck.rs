//! Experiment P3.2: total type checking is PTIME for ordered schemas with
//! arbitrary queries (Proposition 3.2). Sweeps query size with joins
//! present — the cost should stay polynomial even though satisfiability
//! with joins enumerates.

use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::workload;
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::feas::{analyze, Constraints};
use ssd_core::{total_type_check, TypeAssignment};
use ssd_query::VarKind;

fn total_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("p32/total_typecheck");
    g.sample_size(20);
    for num_defs in [2usize, 4, 8, 16] {
        let (s, tg, q) = workload(400 + num_defs as u64, 10, num_defs, false, false);
        // Derive a checkable assignment from the analysis itself.
        let a = analyze(&q, &s, &tg, &Constraints::none()).unwrap();
        let mut assignment = TypeAssignment::new();
        for v in q.vars() {
            match q.kind(v) {
                VarKind::Node { .. } | VarKind::Value => {
                    // Pick the smallest feasible type pinned globally.
                    let t = s
                        .types()
                        .find(|&t| {
                            a.feas[v.index()].contains(&t)
                                && analyze(&q, &s, &tg, &Constraints::none().pin_type(v, t))
                                    .unwrap()
                                    .satisfiable
                        })
                        .unwrap_or(s.root());
                    assignment.types.insert(v, t);
                }
                VarKind::Label => {}
            }
        }
        g.bench_with_input(BenchmarkId::from_parameter(num_defs), &num_defs, |b, _| {
            b.iter(|| total_type_check(&q, &s, &assignment).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, total_check);
criterion_main!(benches);
