//! Experiment T2.r2 / T2.r4: the PTIME cells of Table 2.
//!
//! Sweeps query size (number of definitions) and schema size for (a) the
//! trace-product engine on join-free queries over ordered schemas and (b)
//! the tagged/constant-suffix algorithm over DTD+-class schemas. The
//! paper's claim: polynomial query and combined complexity — runtimes
//! should grow smoothly, not exponentially, along both axes.

use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::workload;
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::feas::{analyze, Constraints};
use ssd_core::tagged::satisfiable_tagged;

fn ordered_joinfree(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2/ordered_joinfree_query_size");
    g.sample_size(20);
    for num_defs in [2usize, 4, 8, 16] {
        let (s, tg, q) = workload(100 + num_defs as u64, 10, num_defs, false, false);
        g.bench_with_input(BenchmarkId::from_parameter(num_defs), &num_defs, |b, _| {
            b.iter(|| {
                analyze(&q, &s, &tg, &Constraints::none())
                    .unwrap()
                    .satisfiable
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("t2/ordered_joinfree_schema_size");
    g.sample_size(20);
    for num_types in [4usize, 8, 16, 32] {
        let (s, tg, q) = workload(200 + num_types as u64, num_types, 4, false, false);
        g.bench_with_input(
            BenchmarkId::from_parameter(num_types),
            &num_types,
            |b, _| {
                b.iter(|| {
                    analyze(&q, &s, &tg, &Constraints::none())
                        .unwrap()
                        .satisfiable
                })
            },
        );
    }
    g.finish();
}

fn tagged_constant_suffix(c: &mut Criterion) {
    let mut g = c.benchmark_group("t2/tagged_constant_suffix");
    g.sample_size(20);
    for num_defs in [2usize, 4, 8, 16] {
        // The random generator occasionally falls outside the
        // constant-suffix class (its fallback query uses `_+`); retry
        // seeds until the workload is in class.
        let (s, tg, q) = (0..64)
            .map(|k| workload(300 + num_defs as u64 + 1000 * k, 10, num_defs, true, true))
            .find(|(_, _, q)| ssd_query::QueryClass::of(q).constant_suffix)
            .expect("a constant-suffix workload exists");
        g.bench_with_input(BenchmarkId::from_parameter(num_defs), &num_defs, |b, _| {
            b.iter(|| satisfiable_tagged(&q, &s, &tg, &Constraints::none()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, ordered_joinfree, tagged_constant_suffix);
criterion_main!(benches);
