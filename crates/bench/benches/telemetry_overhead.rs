//! Experiment OBS.r1: the cost of always-on telemetry.
//!
//! The production claim is that a [`SamplingRecorder`] feeding a
//! [`MetricsRegistry`] can stay permanently attached: at the default
//! sampling rate the warm `dispatch::satisfiable` path must stay within
//! 5% of the noop-recorder baseline. Four recorder configurations run
//! the identical warm workload (every call is a feas-memo hit):
//!
//! * `noop` — `Session::new()`, the recorder-free baseline;
//! * `registry` — a bare [`MetricsRegistry`] (every span timed, no
//!   sampling decision);
//! * `sampled` — [`SamplingRecorder`] at [`DEFAULT_SAMPLE_RATE`] over
//!   the registry: the shipping configuration;
//! * `sampled_hot` — the same sampler at rate 1.0 (every trace pays the
//!   full forwarding cost), the worst case.
//!
//! The measured overhead ratios are published into `BENCH_summary.json`
//! as metrics (`telemetry_overhead_sampled`, …) so `bench-compare` and
//! CI can gate on them; verdict equality across configurations is
//! asserted before timing.

use std::sync::Arc;

use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::summary::set_metric;
use ssd_bench::workload;
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::Session;
use ssd_obs::{MetricsRegistry, Recorder, SamplingRecorder, DEFAULT_SAMPLE_RATE};

fn quick() -> bool {
    std::env::var_os("SSD_BENCH_QUICK").is_some()
}

/// The four recorder configurations under test. The registry handle is
/// kept so the bench can report cache/sampler stats afterwards.
fn configs() -> Vec<(&'static str, Session, Option<Arc<SamplingRecorder>>)> {
    let mut out = Vec::new();
    out.push(("noop", Session::new(), None));

    let registry = Arc::new(MetricsRegistry::new());
    out.push((
        "registry",
        Session::with_recorder(registry as Arc<dyn Recorder>),
        None,
    ));

    let registry = Arc::new(MetricsRegistry::new());
    let sampled = Arc::new(SamplingRecorder::new(
        registry as Arc<dyn Recorder>,
        DEFAULT_SAMPLE_RATE,
    ));
    out.push((
        "sampled",
        Session::with_recorder(Arc::clone(&sampled) as Arc<dyn Recorder>),
        Some(sampled),
    ));

    let registry = Arc::new(MetricsRegistry::new());
    let hot = Arc::new(SamplingRecorder::new(registry as Arc<dyn Recorder>, 1.0));
    out.push((
        "sampled_hot",
        Session::with_recorder(Arc::clone(&hot) as Arc<dyn Recorder>),
        Some(hot),
    ));
    out
}

fn warm_satisfiable_overhead(c: &mut Criterion) {
    let (s, _tg, q) = workload(902, 12, 2, false, false);
    let configs = configs();

    // Every configuration must produce the identical verdict, warm and
    // cold — telemetry must never change an answer.
    let want = Session::new().satisfiable(&q, &s).unwrap().satisfiable;
    for (name, sess, _) in &configs {
        assert_eq!(
            sess.satisfiable(&q, &s).unwrap().satisfiable,
            want,
            "{name} changed the verdict"
        );
        // Warm the caches so the timed loop is pure feas-memo hits.
        for _ in 0..8 {
            sess.satisfiable(&q, &s).unwrap();
        }
    }

    let mut g = c.benchmark_group("telemetry/warm_satisfiable");
    g.sample_size(if quick() { 10 } else { 30 });
    for (name, sess, _) in &configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), sess, |b, sess| {
            b.iter(|| sess.satisfiable(&q, &s).unwrap().satisfiable)
        });
    }
    g.finish();

    // Publish overhead ratios vs the noop baseline into the summary.
    let recs = ssd_bench::harness::records();
    let median = |name: &str| {
        recs.iter()
            .find(|r| r.label == format!("telemetry/warm_satisfiable/{name}"))
            .map(|r| r.median_ns)
    };
    if let Some(base) = median("noop") {
        for (name, _, _) in &configs {
            if let Some(m) = median(name) {
                let ratio = m / base;
                set_metric(&format!("telemetry_overhead_{name}"), ratio);
                println!(
                    "telemetry overhead {name}: {m:.0} ns vs {base:.0} ns baseline ({ratio:.3}x)"
                );
            }
        }
    }
    for (name, sess, sampler) in &configs {
        let stats = sess.stats();
        set_metric(
            &format!("telemetry_{name}_feas_memo_hit_ratio"),
            stats.feas_memo_table.hit_ratio(),
        );
        if let Some(sampler) = sampler {
            println!(
                "telemetry {name}: traces started={} sampled={} promoted={}",
                sampler.traces_started(),
                sampler.traces_sampled(),
                sampler.traces_promoted()
            );
            set_metric(
                &format!("telemetry_{name}_traces_started"),
                sampler.traces_started() as f64,
            );
            set_metric(
                &format!("telemetry_{name}_traces_sampled"),
                sampler.traces_sampled() as f64,
            );
        }
    }
}

criterion_group!(benches, warm_satisfiable_overhead);
criterion_main!(benches);
