//! Experiment BM99: conformance checking is PTIME for tagged schemas
//! (Definition 2.1, after [BM99]). Sweeps document size against the
//! paper's bibliography schema.

use ssd_base::SharedInterner;
use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::{criterion_group, criterion_main};
use ssd_gen::corpora::{bibliography, PAPER_SCHEMA};
use ssd_model::parse_data_graph;
use ssd_schema::{conforms, parse_schema};

fn conformance(c: &mut Criterion) {
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let mut g = c.benchmark_group("bm99/conformance_doc_size");
    g.sample_size(20);
    for papers in [10usize, 40, 160, 640] {
        let data = parse_data_graph(&bibliography(papers, 2), &pool).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(data.len()), &papers, |b, _| {
            b.iter(|| conforms(&data, &s).is_some())
        });
    }
    g.finish();
}

criterion_group!(benches, conformance);
criterion_main!(benches);
