//! Experiment CONC.r1: multi-threaded throughput of one shared session.
//!
//! The session caches (automata tables, type graphs, and the feas memo)
//! are N-way sharded; this bench measures what that buys under real
//! parallelism:
//!
//! * **warm-read scaling** — a fixed batch of repeated `satisfiable`
//!   calls (a mixed workload: several schemas, join-free and tagged
//!   queries, plain and pinned constraints) is split across 1/2/4/8
//!   threads sharing one pre-warmed [`Session`]. Every query is answered
//!   from the feas memo, so ideal scaling divides the per-iteration time
//!   by the thread count; the printed summary reports queries/second and
//!   the measured speedup per thread count.
//! * **cold-miss scaling** — the same split against a fresh shared
//!   session per iteration, where every thread inserts into the caches:
//!   misses on different keys land on different shards and need not
//!   serialize on one exclusive lock.
//!
//! Verdicts are asserted inside the measured loops: the concurrent warm
//! runs must reproduce the single-threaded cold verdicts exactly, and the
//! per-shard blocked-acquisition counts of the hottest table (the feas
//! memo) are printed at the end as the contention report.
//!
//! `SSD_BENCH_QUICK=1` shrinks the workload, thread list, and sample
//! count for CI smoke runs; `SSD_BENCH_TELEMETRY` additionally writes the
//! per-thread-count rows to the bench telemetry JSON.

use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::workload;
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::{Constraints, Session};
use ssd_query::Query;
use ssd_schema::Schema;

fn quick() -> bool {
    std::env::var_os("SSD_BENCH_QUICK").is_some()
}

/// Thread counts under test.
fn thread_counts() -> Vec<usize> {
    if quick() {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// Passes over the full item list per benchmark iteration (split across
/// threads; every count in [`thread_counts`] divides it).
fn total_rounds() -> usize {
    if quick() {
        16
    } else {
        256
    }
}

/// A mixed workload: ordered and tagged schemas of several sizes, each
/// with a plain and a pinned-constraint variant (the pin targets the
/// first SELECT variable, so some verdicts flip to unsat — the memo must
/// keep the variants apart).
fn mixed_workload() -> Vec<(Schema, Query, Constraints)> {
    let specs: &[(u64, usize, usize, bool)] = &[
        (1100, 6, 1, false),
        (1101, 6, 2, false),
        (1102, 12, 2, false),
        (1103, 12, 4, false),
        (1104, 24, 2, false),
        (1105, 24, 4, false),
        (1106, 12, 2, true),
        (1107, 48, 4, false),
    ];
    let n = if quick() { 4 } else { specs.len() };
    let mut items = Vec::new();
    for &(seed, num_types, num_defs, tagged) in &specs[..n] {
        let (s, _tg, q) = workload(seed, num_types, num_defs, tagged, false);
        let pinned = Constraints::none().pin_type(q.select()[0], s.root());
        items.push((s.clone(), q.clone(), pinned));
        items.push((s, q, Constraints::none()));
    }
    items
}

/// Runs `rounds` passes over the items through `sess`, returning the
/// number of satisfiable verdicts (checked by the caller).
fn run_queries(sess: &Session, items: &[(Schema, Query, Constraints)], rounds: usize) -> usize {
    let mut sat = 0;
    for _ in 0..rounds {
        for (s, q, c) in items {
            if sess.satisfiable_with(q, s, c).unwrap().satisfiable {
                sat += 1;
            }
        }
    }
    sat
}

fn warm_scaling(c: &mut Criterion) {
    let items = mixed_workload();
    let sess = Session::new();
    // Warm the shared session and pin down the expected verdicts against
    // a fresh (cold) session: warmth must not change a single bit.
    let want: Vec<bool> = items
        .iter()
        .map(|(s, q, con)| sess.satisfiable_with(q, s, con).unwrap().satisfiable)
        .collect();
    let fresh = Session::new();
    let cold: Vec<bool> = items
        .iter()
        .map(|(s, q, con)| fresh.satisfiable_with(q, s, con).unwrap().satisfiable)
        .collect();
    assert_eq!(want, cold, "warm verdicts must match cold verdicts");
    let sat_per_pass = want.iter().filter(|&&b| b).count();
    let rounds = total_rounds();

    let mut g = c.benchmark_group("concurrency/warm_satisfiable");
    g.sample_size(if quick() { 5 } else { 15 });
    for &t in &thread_counts() {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                // Fixed total work split evenly across t threads.
                let sat: usize = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..t)
                        .map(|_| scope.spawn(|| run_queries(&sess, &items, rounds / t)))
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum()
                });
                assert_eq!(sat, rounds * sat_per_pass, "concurrent verdicts drifted");
                sat
            })
        });
    }
    g.finish();

    report_scaling("concurrency/warm_satisfiable", rounds * items.len());
    let stats = sess.stats();
    println!(
        "concurrency contention: automata_total={} session_total={} \
         feas_memo_hits={} feas_memo_misses={}",
        stats.automata.contended,
        stats.contended,
        stats.feas_memo_table.hits,
        stats.feas_memo_table.misses
    );
    println!(
        "concurrency feas-memo per-shard blocked acquisitions: {:?}",
        stats.feas_memo_contention
    );
}

fn cold_scaling(c: &mut Criterion) {
    let items = mixed_workload();
    let mut g = c.benchmark_group("concurrency/cold_satisfiable");
    g.sample_size(if quick() { 5 } else { 10 });
    for &t in &thread_counts() {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                // A fresh shared session per iteration: every thread takes
                // a disjoint slice of the items, so all cache traffic is
                // misses on distinct keys — the sharded maps' cold path.
                let sess = Session::new();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..t)
                        .map(|k| {
                            let sess = &sess;
                            let items = &items;
                            scope.spawn(move || {
                                items
                                    .iter()
                                    .skip(k)
                                    .step_by(t)
                                    .filter(|(s, q, c)| {
                                        sess.satisfiable_with(q, s, c).unwrap().satisfiable
                                    })
                                    .count()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap())
                        .sum::<usize>()
                })
            })
        });
    }
    g.finish();
    report_scaling("concurrency/cold_satisfiable", mixed_workload().len());
}

/// Prints queries/second and measured-vs-ideal speedup per thread count,
/// computed from the recorded medians of `group`.
fn report_scaling(group: &str, ops_per_iter: usize) {
    let recs = ssd_bench::harness::records();
    let median = |t: usize| {
        recs.iter()
            .find(|r| r.label == format!("{group}/{t}"))
            .map(|r| r.median_ns)
    };
    let threads = thread_counts();
    let Some(base) = median(threads[0]) else {
        return;
    };
    for &t in &threads {
        if let Some(m) = median(t) {
            println!(
                "concurrency summary {group}: threads={t} throughput {:.0} q/s speedup {:.2}x (ideal {t}.00x)",
                ops_per_iter as f64 / (m / 1e9),
                base / m
            );
        }
    }
}

criterion_group!(benches, warm_scaling, cold_scaling);
criterion_main!(benches);
