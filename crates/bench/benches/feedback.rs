//! Experiment P4.1: feedback queries are computable in PTIME
//! (Proposition 4.1). Benchmarks the paper's worked example plus random
//! sweeps over growing schemas.

use ssd_base::SharedInterner;
use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::workload;
use ssd_bench::{criterion_group, criterion_main};
use ssd_feedback::feedback_query;
use ssd_gen::corpora::{FEEDBACK_QUERY, PAPER_SCHEMA};
use ssd_query::parse_query;
use ssd_schema::parse_schema;

fn paper_example(c: &mut Criterion) {
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let q = parse_query(FEEDBACK_QUERY, &pool).unwrap();
    c.bench_function("p41/paper_worked_example", |b| {
        b.iter(|| feedback_query(&q, &s).unwrap())
    });
}

fn random_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("p41/schema_size");
    g.sample_size(15);
    for num_types in [4usize, 8, 16] {
        let (s, _tg, q) = workload(500 + num_types as u64, num_types, 3, false, false);
        g.bench_with_input(
            BenchmarkId::from_parameter(num_types),
            &num_types,
            |b, _| b.iter(|| feedback_query(&q, &s).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, paper_example, random_sweep);
criterion_main!(benches);
