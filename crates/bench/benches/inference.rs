//! Experiment T3.3: type inference is output-polynomial in the PTIME
//! classes. A loose schema makes many types feasible; runtime should
//! scale with input + output size.

use ssd_base::SharedInterner;
use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::{criterion_group, criterion_main};
use ssd_core::infer;
use ssd_query::parse_query;
use ssd_schema::parse_schema;

fn loose_schema(n: usize) -> String {
    // ROOT = [(a->T0 | a->T1 | … )*]; every Ti = int — `a` can lead to
    // any of n types, so inference of SELECT X over `a -> X` returns n
    // assignments.
    let alts: Vec<String> = (0..n).map(|i| format!("a->T{i}")).collect();
    let mut s = format!("ROOT = [({})*];\n", alts.join(" | "));
    for i in 0..n {
        s.push_str(&format!("T{i} = int;\n"));
    }
    s.trim_end().trim_end_matches(';').to_owned()
}

fn inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("t33/inference_output_size");
    g.sample_size(15);
    for n in [2usize, 4, 8, 16] {
        let pool = SharedInterner::new();
        let s = parse_schema(&loose_schema(n), &pool).unwrap();
        let q = parse_query("SELECT X WHERE Root = [a -> X]", &pool).unwrap();
        let out = infer(&q, &s).unwrap();
        assert_eq!(out.len(), n, "output size equals the alternation width");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| infer(&q, &s).unwrap().len())
        });
    }
    g.finish();
}

criterion_group!(benches, inference);
criterion_main!(benches);
