//! Experiment S4.3: Skolem transformations — evaluation throughput and
//! output-schema inference for single-variable functions.

use ssd_base::SharedInterner;
use ssd_bench::harness::{BenchmarkId, Criterion};
use ssd_bench::{criterion_group, criterion_main};
use ssd_gen::corpora::{bibliography, PAPER_SCHEMA};
use ssd_model::parse_data_graph;
use ssd_query::parse_query;
use ssd_schema::parse_schema;
use ssd_transform::{apply, infer_output_schema, ConstructEdge, SkolemTerm, Transformation};

fn bib_transform(pool: &SharedInterner) -> Transformation {
    let q = parse_query(
        "SELECT X, V WHERE Root = [paper -> P]; P = [_*.lastname -> X]; X = V",
        pool,
    )
    .unwrap();
    let x = q.var_by_name("X").unwrap();
    let v = q.var_by_name("V").unwrap();
    Transformation {
        query: q,
        rules: vec![
            ConstructEdge {
                source: SkolemTerm::constant("Names"),
                label: pool.intern("person"),
                target: ssd_transform::skolem::Target::Term(SkolemTerm::unary("P", x)),
            },
            ConstructEdge {
                source: SkolemTerm::unary("P", x),
                label: pool.intern("last"),
                target: ssd_transform::skolem::Target::CopyValue(v),
            },
        ],
        root_fun: "Names".to_owned(),
    }
}

fn transform_apply(c: &mut Criterion) {
    let pool = SharedInterner::new();
    let t = bib_transform(&pool);
    let mut g = c.benchmark_group("s43/apply");
    g.sample_size(15);
    for papers in [5usize, 20, 80] {
        let data = parse_data_graph(&bibliography(papers, 2), &pool).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(papers), &papers, |b, _| {
            b.iter(|| apply(&t, &data).unwrap().len())
        });
    }
    g.finish();
}

fn schema_inference(c: &mut Criterion) {
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let t = bib_transform(&pool);
    c.bench_function("s43/infer_output_schema", |b| {
        b.iter(|| infer_output_schema(&t, &s).unwrap().len())
    });
}

criterion_group!(benches, transform_apply, schema_inference);
criterion_main!(benches);
