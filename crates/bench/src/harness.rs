//! A dependency-free benchmark harness exposing the subset of the
//! `criterion` API the bench targets use.
//!
//! The build must work fully offline, so instead of the external crate the
//! bench targets link this shim: same names (`Criterion`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`), same call shapes, plain
//! wall-clock measurement underneath. Each benchmark is run for a warmup
//! period, then sampled `sample_size` times with an iteration count chosen
//! so one sample takes roughly [`TARGET_SAMPLE`]; the median, minimum, and
//! maximum ns/iter are printed in a stable, greppable format:
//!
//! ```text
//! bench group/id ... median 12345 ns/iter (min 12000, max 13000, N=20)
//! ```

use ssd_base::sync::Mutex;
use std::time::{Duration, Instant};

use ssd_obs::json::JsonValue;

/// Target wall-clock duration of a single sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Wall-clock duration spent estimating the per-iteration cost.
const WARMUP: Duration = Duration::from_millis(50);

/// The top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// A fresh harness.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        run_benchmark(name, 20, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labeled by `name` within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark label (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    mode: Mode,
    /// ns per iteration for each completed sample (filled in Measure mode).
    samples: Vec<f64>,
    /// Iterations per sample (decided after calibration).
    iters: u64,
}

enum Mode {
    /// Estimate cost: run until WARMUP elapses, record the mean.
    Calibrate { est_ns: f64 },
    /// Timed run: execute `iters` iterations, push one sample.
    Measure,
}

impl Bencher {
    /// Runs `routine` repeatedly and measures it (mirrors
    /// `criterion::Bencher::iter`).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::Calibrate { ref mut est_ns } => {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < WARMUP {
                    std::hint::black_box(routine());
                    n += 1;
                }
                *est_ns = start.elapsed().as_nanos() as f64 / n.max(1) as f64;
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters {
                    std::hint::black_box(routine());
                }
                let total = start.elapsed().as_nanos() as f64;
                self.samples.push(total / self.iters.max(1) as f64);
            }
        }
    }
}

/// One finished benchmark's summary statistics, kept for telemetry export.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full `group/function/parameter` label.
    pub label: String,
    /// Median ns per iteration across the timed samples.
    pub median_ns: f64,
    /// 99th-percentile sample (nearest-rank), ns per iteration.
    pub p99_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Every benchmark completed in this process, in execution order.
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn push_record(record: BenchRecord) {
    RECORDS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(record);
}

/// All benchmark records collected so far, in execution order.
pub fn records() -> Vec<BenchRecord> {
    RECORDS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Serializes the collected [`BenchRecord`]s as a machine-readable JSON
/// document (the bench half of `BENCH_traces.json`).
pub fn records_json() -> String {
    let benches = records()
        .into_iter()
        .map(|r| {
            JsonValue::obj(vec![
                ("label", JsonValue::str(r.label)),
                ("median_ns", JsonValue::Num(r.median_ns)),
                ("p99_ns", JsonValue::Num(r.p99_ns)),
                ("min_ns", JsonValue::Num(r.min_ns)),
                ("max_ns", JsonValue::Num(r.max_ns)),
                ("samples", JsonValue::num(r.samples as u64)),
            ])
        })
        .collect();
    JsonValue::obj(vec![
        ("version", JsonValue::num(1)),
        ("benches", JsonValue::Arr(benches)),
    ])
    .to_json_string()
}

/// When `SSD_BENCH_TELEMETRY` is set, writes [`records_json`] to the path
/// it names (`1` or empty selects `BENCH_traces.json`). Called by
/// [`criterion_main!`](crate::criterion_main) after every group has run,
/// so plain bench runs stay file-free.
pub fn flush_telemetry() {
    let Ok(dest) = std::env::var("SSD_BENCH_TELEMETRY") else {
        return;
    };
    let path = match dest.as_str() {
        "" | "1" => "BENCH_traces.json",
        other => other,
    };
    match std::fs::write(path, records_json()) {
        Ok(()) => println!("bench telemetry written to {path}"),
        Err(e) => eprintln!("bench telemetry write to {path} failed: {e}"),
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass.
    let mut b = Bencher {
        mode: Mode::Calibrate { est_ns: 0.0 },
        samples: Vec::new(),
        iters: 1,
    };
    f(&mut b);
    let est_ns = match b.mode {
        Mode::Calibrate { est_ns } => est_ns.max(1.0),
        Mode::Measure => unreachable!(),
    };
    let iters = ((TARGET_SAMPLE.as_nanos() as f64 / est_ns).ceil() as u64).max(1);

    // Timed samples.
    let mut b = Bencher {
        mode: Mode::Measure,
        samples: Vec::with_capacity(sample_size),
        iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut s = b.samples;
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = s[s.len() / 2];
    // Nearest-rank p99: index ⌈0.99·N⌉-1, clamped into range.
    let p99 = s[(((s.len() as f64) * 0.99).ceil() as usize).clamp(1, s.len()) - 1];
    let (min, max) = (s[0], s[s.len() - 1]);
    println!(
        "bench {label} ... median {median:.0} ns/iter (min {min:.0}, max {max:.0}, N={})",
        s.len()
    );
    push_record(BenchRecord {
        label: label.to_owned(),
        median_ns: median,
        p99_ns: p99,
        min_ns: min,
        max_ns: max,
        samples: s.len(),
    });
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// listed benchmark function against one shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::harness::flush_telemetry();
            $crate::summary::flush_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::new();
        c.bench_function("harness/self_test", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn completed_benchmarks_are_recorded_as_json() {
        let mut c = Criterion::new();
        c.bench_function("harness/telemetry_probe", |b| b.iter(|| 2 * 2));
        let recs = records();
        let probe = recs
            .iter()
            .find(|r| r.label == "harness/telemetry_probe")
            .expect("bench run leaves a record");
        assert!(probe.samples >= 2);
        assert!(probe.min_ns <= probe.median_ns && probe.median_ns <= probe.max_ns);
        let parsed = JsonValue::parse(&records_json()).expect("records serialize to valid JSON");
        let benches = parsed.get("benches").unwrap().as_array().unwrap();
        assert!(
            benches
                .iter()
                .any(|b| b.get("label").and_then(JsonValue::as_str)
                    == Some("harness/telemetry_probe"))
        );
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("harness/group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
