//! A dependency-free benchmark harness exposing the subset of the
//! `criterion` API the bench targets use.
//!
//! The build must work fully offline, so instead of the external crate the
//! bench targets link this shim: same names (`Criterion`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`), same call shapes, plain
//! wall-clock measurement underneath. Each benchmark is run for a warmup
//! period, then sampled `sample_size` times with an iteration count chosen
//! so one sample takes roughly [`TARGET_SAMPLE`]; the median, minimum, and
//! maximum ns/iter are printed in a stable, greppable format:
//!
//! ```text
//! bench group/id ... median 12345 ns/iter (min 12000, max 13000, N=20)
//! ```

use std::time::{Duration, Instant};

/// Target wall-clock duration of a single sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Wall-clock duration spent estimating the per-iteration cost.
const WARMUP: Duration = Duration::from_millis(50);

/// The top-level harness handle (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// A fresh harness.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        run_benchmark(name, 20, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labeled by `name` within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (a no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// A benchmark label (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher {
    mode: Mode,
    /// ns per iteration for each completed sample (filled in Measure mode).
    samples: Vec<f64>,
    /// Iterations per sample (decided after calibration).
    iters: u64,
}

enum Mode {
    /// Estimate cost: run until WARMUP elapses, record the mean.
    Calibrate { est_ns: f64 },
    /// Timed run: execute `iters` iterations, push one sample.
    Measure,
}

impl Bencher {
    /// Runs `routine` repeatedly and measures it (mirrors
    /// `criterion::Bencher::iter`).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::Calibrate { ref mut est_ns } => {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < WARMUP {
                    std::hint::black_box(routine());
                    n += 1;
                }
                *est_ns = start.elapsed().as_nanos() as f64 / n.max(1) as f64;
            }
            Mode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters {
                    std::hint::black_box(routine());
                }
                let total = start.elapsed().as_nanos() as f64;
                self.samples.push(total / self.iters.max(1) as f64);
            }
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration pass.
    let mut b = Bencher {
        mode: Mode::Calibrate { est_ns: 0.0 },
        samples: Vec::new(),
        iters: 1,
    };
    f(&mut b);
    let est_ns = match b.mode {
        Mode::Calibrate { est_ns } => est_ns.max(1.0),
        Mode::Measure => unreachable!(),
    };
    let iters = ((TARGET_SAMPLE.as_nanos() as f64 / est_ns).ceil() as u64).max(1);

    // Timed samples.
    let mut b = Bencher {
        mode: Mode::Measure,
        samples: Vec::with_capacity(sample_size),
        iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut s = b.samples;
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = s[s.len() / 2];
    let (min, max) = (s[0], s[s.len() - 1]);
    println!(
        "bench {label} ... median {median:.0} ns/iter (min {min:.0}, max {max:.0}, N={})",
        s.len()
    );
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// listed benchmark function against one shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::harness::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::new();
        c.bench_function("harness/self_test", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("harness/group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
