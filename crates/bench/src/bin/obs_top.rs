//! `obs_top` — a live terminal dashboard over the production telemetry
//! stack.
//!
//! Worker threads drive a mixed satisfiability workload through one
//! shared [`Session`] whose recorder is a [`SamplingRecorder`] feeding a
//! [`MetricsRegistry`]; the main thread refreshes a dashboard frame from
//! registry snapshots (throughput, verdict mix, dispatch latency
//! quantiles, cache hit ratios, shard occupancy, trace sampling).
//!
//! ```text
//! obs_top [FLAGS]
//!
//!   --once            render a single final frame instead of refreshing
//!   --plain           no ANSI control codes (CI logs)
//!   --interval MS     refresh period (default 1000)
//!   --duration S      run time in seconds; 0 = until killed (default 10)
//!   --threads N       worker threads (default 4)
//!   --rate F          trace sampling rate in [0,1] (default 0.01)
//!   --expose PATH     write final Prometheus exposition to PATH
//!   --json PATH       write final JSON metrics snapshot to PATH
//! ```
//!
//! Exit codes: `0` on success, `2` on usage or I/O error.

use ssd_base::sync::{Arc, AtomicBool, AtomicU64, Ordering};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ssd_base::budget::Budget;
use ssd_bench::workload;
use ssd_core::{Constraints, Session};
use ssd_obs::{expose, names, MetricsRegistry, MetricsSnapshot, SamplingRecorder};
use ssd_query::Query;
use ssd_schema::Schema;

struct Opts {
    once: bool,
    plain: bool,
    interval: Duration,
    duration: Duration,
    threads: usize,
    rate: f64,
    expose: Option<String>,
    json: Option<String>,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            once: false,
            plain: false,
            interval: Duration::from_millis(1000),
            duration: Duration::from_secs(10),
            threads: 4,
            rate: ssd_obs::DEFAULT_SAMPLE_RATE,
            expose: None,
            json: None,
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("obs_top: {msg}");
    eprintln!(
        "usage: obs_top [--once] [--plain] [--interval MS] [--duration S] \
         [--threads N] [--rate F] [--expose PATH] [--json PATH]"
    );
    ExitCode::from(2)
}

fn parse_opts(argv: &[String]) -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--once" => o.once = true,
            "--plain" => o.plain = true,
            "--interval" => {
                let ms: u64 = value("--interval")?
                    .parse()
                    .map_err(|_| "--interval: not an integer".to_owned())?;
                o.interval = Duration::from_millis(ms.max(50));
            }
            "--duration" => {
                let s: f64 = value("--duration")?
                    .parse()
                    .map_err(|_| "--duration: not a number".to_owned())?;
                if !s.is_finite() || s < 0.0 {
                    return Err("--duration: must be >= 0".to_owned());
                }
                o.duration = Duration::from_secs_f64(s);
            }
            "--threads" => {
                o.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads: not an integer".to_owned())?;
                o.threads = o.threads.clamp(1, 64);
            }
            "--rate" => {
                o.rate = value("--rate")?
                    .parse()
                    .map_err(|_| "--rate: not a number".to_owned())?;
            }
            "--expose" => o.expose = Some(value("--expose")?),
            "--json" => o.json = Some(value("--json")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

/// The driven workload: several schema sizes, join-free and tagged
/// queries, plain and pinned constraints (same shape as the concurrency
/// bench's mix).
fn mixed_items() -> Vec<(Schema, Query, Constraints)> {
    let specs: &[(u64, usize, usize, bool)] = &[
        (1100, 6, 1, false),
        (1102, 12, 2, false),
        (1104, 24, 2, false),
        (1106, 12, 2, true),
    ];
    let mut items = Vec::new();
    for &(seed, num_types, num_defs, tagged) in specs {
        let (s, _tg, q) = workload(seed, num_types, num_defs, tagged, false);
        let pinned = Constraints::none().pin_type(q.select()[0], s.root());
        items.push((s.clone(), q.clone(), pinned));
        items.push((s, q, Constraints::none()));
    }
    items
}

/// One worker: loops the mixed items through the shared session until
/// `stop`, occasionally under a starvation budget so exhausted requests
/// (and their always-sampled traces) show up on the dashboard.
fn worker(
    sess: &Session,
    items: &[(Schema, Query, Constraints)],
    stop: &AtomicBool,
    errs: &AtomicU64,
) {
    let mut round = 0u64;
    while !stop.load(Ordering::Relaxed) {
        for (s, q, c) in items {
            round += 1;
            let r = if round.is_multiple_of(64) {
                let tiny = Budget::cancellable().with_fuel(1);
                sess.satisfiable_budgeted(q, s, &tiny).map(|_| ())
            } else {
                sess.satisfiable_with(q, s, c).map(|_| ())
            };
            if r.is_err() {
                errs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn ratio_pct(v: Option<f64>) -> String {
    match v {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "-".to_owned(),
    }
}

/// Renders one dashboard frame from a snapshot.
fn render(snap: &MetricsSnapshot, errs: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ssd obs-top | uptime {:.1}s | epoch {} | window {}x{}ms",
        snap.uptime.as_secs_f64(),
        snap.epoch,
        snap.window,
        snap.epoch_len.as_millis()
    );
    let sat = snap.counter_total(names::counter::VERDICT_SAT);
    let unsat = snap.counter_total(names::counter::VERDICT_UNSAT);
    let exhausted = snap.counter_total(names::counter::BUDGET_EXHAUSTED);
    let rate: f64 = snap
        .counters
        .iter()
        .filter(|c| {
            c.name == names::counter::VERDICT_SAT || c.name == names::counter::VERDICT_UNSAT
        })
        .map(|c| c.rate)
        .sum();
    let _ = writeln!(
        out,
        "requests  {} verdicts ({} sat / {} unsat), {:.0}/s | {} exhausted | {} errors",
        sat + unsat,
        sat,
        unsat,
        rate,
        exhausted,
        errs
    );
    let _ = writeln!(
        out,
        "traces    {} started, {} sampled, {} promoted (on exhaustion)",
        snap.gauge(names::gauge::OBS_TRACES_TOTAL).unwrap_or(0.0),
        snap.gauge(names::gauge::OBS_TRACES_SAMPLED).unwrap_or(0.0),
        snap.gauge(names::gauge::OBS_TRACES_PROMOTED).unwrap_or(0.0),
    );
    for span in [
        names::span::DISPATCH,
        names::span::FEAS_MEMO,
        names::span::PTRACES,
    ] {
        if let Some(h) = snap.histogram(span) {
            if h.count > 0 {
                let _ = writeln!(
                    out,
                    "latency   {span:<12} p50 {:>8}  p95 {:>8}  p99 {:>8}  (window n={})",
                    fmt_ns(h.quantile_upper(0.5)),
                    fmt_ns(h.quantile_upper(0.95)),
                    fmt_ns(h.quantile_upper(0.99)),
                    h.count
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "caches    feas memo {} hit ({} entries) | type graph {} ({}) | automata {} ({})",
        ratio_pct(snap.gauge(names::gauge::HIT_RATIO_FEAS_MEMO)),
        snap.gauge(names::gauge::FEAS_MEMO_ENTRIES).unwrap_or(0.0),
        ratio_pct(snap.gauge(names::gauge::HIT_RATIO_TYPE_GRAPH)),
        snap.gauge(names::gauge::TYPE_GRAPH_ENTRIES).unwrap_or(0.0),
        ratio_pct(snap.gauge(names::gauge::HIT_RATIO_AUTOMATA)),
        snap.gauge(names::gauge::AUTOMATA_ENTRIES).unwrap_or(0.0),
    );
    let _ = writeln!(
        out,
        "compiled  {} tables | {} bytes",
        snap.gauge(names::gauge::COMPILED_ENTRIES).unwrap_or(0.0),
        snap.gauge(names::gauge::COMPILED_BYTES).unwrap_or(0.0),
    );
    let _ = writeln!(
        out,
        "snapshot  {} bytes retained | loaded {} | {} sections in, {} rejected",
        snap.gauge(names::gauge::SNAPSHOT_BYTES).unwrap_or(0.0),
        match snap.gauge(names::gauge::SNAPSHOT_AGE_SECONDS) {
            Some(age) => format!("{age:.0}s ago"),
            None => "never".to_owned(),
        },
        snap.counter_total(names::counter::SNAPSHOT_SECTION_LOADED),
        snap.counter_total(names::counter::SNAPSHOT_SECTION_REJECTED),
    );
    let _ = writeln!(
        out,
        "memory    {} type-graph bytes | {} evicted | {} blocked lock acquisitions",
        snap.gauge(names::gauge::SESSION_CACHE_BYTES).unwrap_or(0.0),
        snap.gauge(names::gauge::EVICTED_SESSION).unwrap_or(0.0),
        snap.gauge(names::gauge::SHARD_CONTENTION).unwrap_or(0.0),
    );
    for (label, name) in [
        ("feas memo", names::gauge::SHARD_OCCUPANCY_FEAS_MEMO),
        ("type graph", names::gauge::SHARD_OCCUPANCY_TYPE_GRAPH),
        ("automata", names::gauge::SHARD_OCCUPANCY_AUTOMATA),
    ] {
        if let Some(g) = snap.gauges.iter().find(|g| g.name == name) {
            if !g.slots.is_empty() {
                let cells: Vec<String> = g
                    .slots
                    .iter()
                    .map(|(i, v)| format!("{i}:{}", *v as u64))
                    .collect();
                let _ = writeln!(out, "shards    {label:<11} {}", cells.join(" "));
            }
        }
    }
    out
}

fn write_file(path: &str, contents: &str, what: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("writing {what} to {path}: {e}"))?;
    println!("obs-top: {what} written to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };

    let registry = Arc::new(MetricsRegistry::new());
    let sampler = Arc::new(SamplingRecorder::new(
        Arc::clone(&registry) as Arc<dyn ssd_obs::Recorder>,
        opts.rate,
    ));
    let sess = Session::with_recorder(Arc::clone(&sampler) as Arc<dyn ssd_obs::Recorder>);
    let items = mixed_items();
    // Warm-start bootstrap: persist a warmed twin session and hydrate the
    // live one from it, so the snapshot health row (and the snapshot_*
    // metrics in the exposition) reflect a real load.
    {
        let warm = Session::new();
        for (s, q, c) in &items {
            let _ = warm.satisfiable_with(q, s, c);
        }
        let path = std::env::temp_dir().join(format!("ssd-obs-top-{}.snap", std::process::id()));
        let schemas: Vec<&Schema> = items.iter().map(|(s, _, _)| s).collect();
        if warm.save_snapshot(&path, &schemas).is_ok() {
            let out = sess.load_snapshot(&path, &schemas);
            println!("obs-top: warm start: {out}");
        }
        std::fs::remove_file(&path).ok();
    }
    let stop = AtomicBool::new(false);
    let errs = AtomicU64::new(0);

    let exit = std::thread::scope(|scope| {
        for _ in 0..opts.threads {
            scope.spawn(|| worker(&sess, &items, &stop, &errs));
        }
        let started = Instant::now();
        loop {
            let sleep = if opts.duration.is_zero() {
                opts.interval
            } else {
                opts.interval
                    .min(opts.duration.saturating_sub(started.elapsed()))
            };
            std::thread::sleep(sleep.max(Duration::from_millis(10)));
            let done = !opts.duration.is_zero() && started.elapsed() >= opts.duration;
            // Publish pull-style gauges, then snapshot.
            sess.publish_gauges(&registry);
            sampler.publish(&registry);
            let snap = registry.snapshot();
            if !opts.once || done {
                let frame = render(&snap, errs.load(Ordering::Relaxed));
                if opts.plain {
                    print!("{frame}");
                } else {
                    // Clear screen, home cursor, repaint.
                    print!("\x1b[2J\x1b[H{frame}");
                }
            }
            if done {
                stop.store(true, Ordering::Relaxed);
                let mut result = Ok(());
                if let Some(path) = &opts.expose {
                    result = result.and(write_file(
                        path,
                        &expose::to_prometheus(&snap),
                        "exposition",
                    ));
                }
                if let Some(path) = &opts.json {
                    result = result.and(write_file(
                        path,
                        &expose::to_json_string(&snap),
                        "json snapshot",
                    ));
                }
                break match result {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("obs-top: {e}");
                        ExitCode::from(2)
                    }
                };
            }
        }
    });
    exit
}
