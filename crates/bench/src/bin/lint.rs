//! `lint` — the command-line front end of `ssd-lint`.
//!
//! Lints a query against a schema and prints annotated human-readable
//! diagnostics (or machine JSON with `--json`). Runs under a
//! [`ssd_core::Session`] so repeated invocations in `--demo` mode share
//! automata and feas-memo caches, respects `--fuel` budgets, and records
//! `lint_*` spans via `ssd-obs` when `--telemetry` is given.
//!
//! ```text
//! lint --schema FILE [--dtd] --query FILE [--json] [--pin VAR=TYPE]...
//!      [--pin-label VAR=LABEL]... [--fuel N] [--telemetry[=PATH]]
//! lint --demo[=DIR] [--json] [--telemetry[=PATH]]
//! ```
//!
//! Exit status: 0 when no error-level diagnostics were found, 1 when at
//! least one error was reported, 2 on usage or parse failures. `--demo`
//! runs the bundled corpus under `examples/lint/` (each scenario
//! demonstrating one diagnostic kind) and always exits 0.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use ssd_base::budget::Budget;
use ssd_base::SharedInterner;
use ssd_core::{Constraints, Session};
use ssd_lint::lint_with;
use ssd_obs::TraceRecorder;
use ssd_query::{parse_query, Query};
use ssd_schema::{parse_dtd, parse_schema, Schema};

struct Opts {
    schema: Option<PathBuf>,
    dtd: bool,
    query: Option<PathBuf>,
    json: bool,
    pins: Vec<(String, String)>,
    pin_labels: Vec<(String, String)>,
    fuel: Option<u64>,
    telemetry: Option<PathBuf>,
    demo: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: lint --schema FILE [--dtd] --query FILE [--json] \
         [--pin VAR=TYPE]... [--pin-label VAR=LABEL]... [--fuel N] \
         [--telemetry[=PATH]]\n       lint --demo[=DIR] [--json] [--telemetry[=PATH]]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut o = Opts {
        schema: None,
        dtd: false,
        query: None,
        json: false,
        pins: Vec::new(),
        pin_labels: Vec::new(),
        fuel: None,
        telemetry: None,
        demo: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let take = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--schema" => o.schema = Some(PathBuf::from(take(&mut args))),
            "--dtd" => o.dtd = true,
            "--query" => o.query = Some(PathBuf::from(take(&mut args))),
            "--json" => o.json = true,
            "--pin" => o.pins.push(split_eq(&take(&mut args))),
            "--pin-label" => o.pin_labels.push(split_eq(&take(&mut args))),
            "--fuel" => {
                o.fuel = Some(take(&mut args).parse().unwrap_or_else(|_| usage()));
            }
            "--telemetry" => o.telemetry = Some(PathBuf::from("LINT_traces.json")),
            "--demo" => o.demo = Some(PathBuf::from("examples/lint")),
            _ if a.starts_with("--telemetry=") => {
                o.telemetry = Some(PathBuf::from(&a["--telemetry=".len()..]));
            }
            _ if a.starts_with("--demo=") => {
                o.demo = Some(PathBuf::from(&a["--demo=".len()..]));
            }
            _ => usage(),
        }
    }
    o
}

fn split_eq(s: &str) -> (String, String) {
    match s.split_once('=') {
        Some((k, v)) if !k.is_empty() && !v.is_empty() => (k.to_owned(), v.to_owned()),
        _ => usage(),
    }
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("lint: cannot read {}: {e}", path.display());
        std::process::exit(2);
    })
}

fn parse_inputs(
    schema_src: &str,
    dtd: bool,
    query_src: &str,
    pool: &SharedInterner,
) -> Result<(Schema, Query), String> {
    let s = if dtd {
        parse_dtd(schema_src, pool)
    } else {
        parse_schema(schema_src, pool)
    }
    .map_err(|e| format!("schema: {e}"))?;
    let q = parse_query(query_src, pool).map_err(|e| format!("query: {e}"))?;
    Ok((s, q))
}

fn constraints(
    q: &Query,
    s: &Schema,
    pool: &SharedInterner,
    o: &Opts,
) -> Result<Constraints, String> {
    let mut c = Constraints::none();
    for (var, ty) in &o.pins {
        let v = q
            .var_by_name(var)
            .ok_or_else(|| format!("--pin: unknown variable `{var}`"))?;
        let t = s
            .by_name(ty)
            .ok_or_else(|| format!("--pin: unknown type `{ty}`"))?;
        c = c.pin_type(v, t);
    }
    for (var, label) in &o.pin_labels {
        let v = q
            .var_by_name(var)
            .ok_or_else(|| format!("--pin-label: unknown variable `{var}`"))?;
        c = c.pin_label(v, pool.intern(label));
    }
    Ok(c)
}

/// Lints one (schema, query) pair and prints the report. Returns whether
/// any error-level diagnostic was produced.
#[allow(clippy::too_many_arguments)]
fn run_one(
    sess: &Session,
    schema_src: &str,
    dtd: bool,
    query_src: &str,
    origin: &str,
    o: &Opts,
    budget: &Budget,
) -> Result<bool, String> {
    let pool = SharedInterner::new();
    let (s, q) = parse_inputs(schema_src, dtd, query_src, &pool)?;
    let c = constraints(&q, &s, &pool, o)?;
    let report = lint_with(&q, &s, &c, sess, budget).map_err(|e| e.to_string())?;
    if o.json {
        println!("{}", report.to_json(query_src));
    } else {
        print!("{}", report.render_human(query_src, origin));
    }
    Ok(report.has_errors())
}

/// One demo scenario: `(title, schema file, query file, pin, fuel)`.
type Scenario = (
    &'static str,
    &'static str,
    &'static str,
    Option<(&'static str, &'static str)>,
    Option<u64>,
);

/// The bundled demo corpus: one scenario per diagnostic kind (plus a
/// clean query), all run through one shared session.
const DEMO: &[Scenario] = &[
    ("clean query", "bib.scmdl", "clean.ssq", None, None),
    ("unsatisfiable query", "bib.scmdl", "unsat.ssq", None, None),
    ("dead branch", "bib.scmdl", "dead_branch.ssq", None, None),
    (
        "unknown label",
        "bib.scmdl",
        "unknown_label.ssq",
        None,
        None,
    ),
    (
        "redundant constraint",
        "bib.scmdl",
        "pin.ssq",
        Some(("X", "PAPER")),
        None,
    ),
    ("budget exhausted", "refs.scmdl", "joins.ssq", None, Some(1)),
];

fn run_demo(sess: &Session, dir: &Path, o: &Opts) {
    for (title, schema, query, pin, fuel) in DEMO {
        let schema_path = dir.join(schema);
        let query_path = dir.join(query);
        let mut scenario = Opts {
            pins: pin
                .map(|(v, t)| vec![(v.to_owned(), t.to_owned())])
                .unwrap_or_default(),
            ..parse_opts_empty(o)
        };
        scenario.json = o.json;
        let budget = match fuel {
            Some(f) => Budget::unlimited().with_fuel(*f),
            None => Budget::unlimited(),
        };
        if !o.json {
            println!("== {title} ({}) ==", query_path.display());
        }
        let outcome = run_one(
            sess,
            &read(&schema_path),
            false,
            &read(&query_path),
            &query_path.display().to_string(),
            &scenario,
            &budget,
        );
        if let Err(e) = outcome {
            eprintln!("lint: {e}");
            std::process::exit(2);
        }
    }
}

/// A fresh option set inheriting only the output mode (demo scenarios
/// must not inherit file paths or pins from the command line).
fn parse_opts_empty(o: &Opts) -> Opts {
    Opts {
        schema: None,
        dtd: false,
        query: None,
        json: o.json,
        pins: Vec::new(),
        pin_labels: Vec::new(),
        fuel: None,
        telemetry: None,
        demo: None,
    }
}

fn main() -> ExitCode {
    let o = parse_opts();
    let rec = o.telemetry.as_ref().map(|_| Arc::new(TraceRecorder::new()));
    let sess = match &rec {
        Some(r) => Session::with_recorder(r.clone()),
        None => Session::new(),
    };

    let code = if let Some(dir) = &o.demo {
        run_demo(&sess, dir, &o);
        ExitCode::SUCCESS
    } else {
        let (Some(schema), Some(query)) = (&o.schema, &o.query) else {
            usage();
        };
        let budget = match o.fuel {
            Some(f) => Budget::unlimited().with_fuel(f),
            None => Budget::unlimited(),
        };
        let origin = query.display().to_string();
        match run_one(
            &sess,
            &read(schema),
            o.dtd,
            &read(query),
            &origin,
            &o,
            &budget,
        ) {
            Ok(true) => ExitCode::FAILURE,
            Ok(false) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("lint: {e}");
                ExitCode::from(2)
            }
        }
    };

    if let (Some(path), Some(rec)) = (&o.telemetry, &rec) {
        let report = rec.report();
        std::fs::write(path, report.to_json_string()).unwrap_or_else(|e| {
            eprintln!("lint: cannot write telemetry to {}: {e}", path.display());
            std::process::exit(2);
        });
        eprintln!("telemetry written to {}", path.display());
    }
    code
}
