//! Prints the reproduction's experiment tables (the rows recorded in
//! `EXPERIMENTS.md`):
//!
//! 1. Table 2 shape check — wall-clock scaling of the PTIME algorithms vs
//!    the exponential blow-up of the general solver on the 3SAT family;
//! 2. the §4.2 optimizer examples and workloads — edges explored by the
//!    naive strategy vs `A_O` (the paper's cost function);
//! 3. the §4.1 feedback worked example — the rewritten query;
//! 4. the §4.3 transformation example — inferred output schema.
//!
//! Run with `cargo run --release -p ssd-bench --bin experiments`.
//!
//! Pass `--telemetry[=PATH]` (or set `SSD_TELEMETRY`) to additionally run
//! one instrumented pass of the whole pipeline — parse → type-graph →
//! Glushkov → determinize → product BFS → verdict — under a recording
//! [`ssd_obs::TraceRecorder`], print the per-phase timing tree plus the
//! session cache report, and write the machine-readable trace to `PATH`
//! (default `BENCH_traces.json`).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use ssd_base::budget::Budget;
use ssd_base::rng::StdRng;
use ssd_base::SharedInterner;

use ssd_core::feas::{analyze, Constraints};
use ssd_core::solver;
use ssd_core::{Session, SessionLimits};
use ssd_feedback::feedback_query;
use ssd_gen::corpora::{bibliography, FEEDBACK_QUERY, PAPER_SCHEMA};
use ssd_gen::sat3::Sat3;
use ssd_model::parse_data_graph;
use ssd_obs::{names, TraceRecorder};
use ssd_optimizer::compare;
use ssd_query::parse_query;
use ssd_schema::parse_schema;
use ssd_transform::{infer_output_schema, ConstructEdge, SkolemTerm, Transformation};

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let telemetry = telemetry_path();
    let snap_save = flag_path("--snapshot-save", "BENCH_session.snap");
    let snap_load = flag_path("--snapshot-load", "BENCH_session.snap");
    table2_shape();
    optimizer_tables();
    feedback_example();
    transform_example();
    if let Some(path) = telemetry {
        telemetry_run(&path);
    }
    if snap_save.is_some() || snap_load.is_some() {
        snapshot_run(snap_save.as_deref(), snap_load.as_deref());
    }
}

/// Parses `NAME` / `NAME=PATH` from the command line (the `--telemetry`
/// idiom), with `default` standing in for the bare form.
fn flag_path(name: &str, default: &str) -> Option<PathBuf> {
    for arg in std::env::args().skip(1) {
        if arg == name {
            return Some(PathBuf::from(default));
        }
        if let Some(path) = arg.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Warm-start demonstration: optionally hydrate a session from `load`,
/// run the paper worked example plus a mixed workload, then optionally
/// persist the warmed caches to `save` for the next run.
fn snapshot_run(save: Option<&Path>, load: Option<&Path>) {
    println!("== Snapshot: warm-start session store ==");
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let q = parse_query(FEEDBACK_QUERY, &pool).unwrap();
    let sess = Session::new();
    if let Some(path) = load {
        let t0 = Instant::now();
        let out = sess.load_snapshot(path, &[&s]);
        println!(
            "loaded {} in {:.2} ms: {out}",
            path.display(),
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
    let t0 = Instant::now();
    let verdict = sess.satisfiable(&q, &s).unwrap();
    println!(
        "first verdict (satisfiable={}) in {:.2} ms",
        verdict.satisfiable,
        t0.elapsed().as_secs_f64() * 1e3
    );
    if let Some(path) = save {
        match sess.save_snapshot(path, &[&s]) {
            Ok(bytes) => println!("saved {bytes} bytes to {}", path.display()),
            Err(e) => println!("snapshot save failed: {e}"),
        }
    }
}

/// Where to write the trace artifact, if telemetry was requested:
/// `--telemetry` / `--telemetry=PATH` on the command line, or the
/// `SSD_TELEMETRY` environment variable (`1` selects the default path).
fn telemetry_path() -> Option<PathBuf> {
    const DEFAULT: &str = "BENCH_traces.json";
    for arg in std::env::args().skip(1) {
        if arg == "--telemetry" {
            return Some(PathBuf::from(DEFAULT));
        }
        if let Some(path) = arg.strip_prefix("--telemetry=") {
            return Some(PathBuf::from(path));
        }
    }
    match std::env::var("SSD_TELEMETRY").ok()?.as_str() {
        "" | "0" => None,
        "1" => Some(PathBuf::from(DEFAULT)),
        path => Some(PathBuf::from(path)),
    }
}

/// One instrumented pass over each pipeline family — the dispatched
/// trace-product cell, lazy P-traces emptiness, the NP solver cell, and
/// type inference — all against a single recording [`Session`], so the
/// exported trace covers every phase and cache table at once.
fn telemetry_run(out: &Path) {
    println!("== Telemetry: instrumented pipeline pass ==");
    let rec = Arc::new(TraceRecorder::new());
    let sess = Session::with_recorder(rec.clone());
    let pool = SharedInterner::new();

    // Parse the paper corpus under a `parse` span.
    let (s, q) = {
        let _parse = ssd_obs::span(rec.as_ref(), names::span::PARSE);
        let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
        let q = parse_query(FEEDBACK_QUERY, &pool).unwrap();
        (s, q)
    };
    let worked = sess.satisfiable(&q, &s).unwrap();

    // Join-free ordered workload: dispatch routes it to the PTIME
    // trace-product analysis (`feas`), and the same query runs through
    // the lazy P-traces product BFS.
    let (ps, _, pq) = ssd_bench::workload(7001, 12, 1, false, true);
    let feas_sat = sess.satisfiable(&pq, &ps).unwrap();
    let ptraces_sat = sess
        .satisfiable_ptraces(&pq, &ps)
        .map(|sat| sat.to_string())
        .unwrap_or_else(|_| "outside class".to_owned());
    // Re-run warm so the trace also exhibits cache hits.
    let _ = sess.satisfiable(&pq, &ps).unwrap();

    // Feas-memo family: a batch of repeat dispatches over mixed
    // workloads — the first pass per workload populates the memo
    // (`feas_memo` span + `cache_feas_memo_miss`), every repeat is a
    // whole-table hit answered without running the engine.
    let mut memo_dispatches = 0u64;
    for seed in [7101u64, 7102, 7103] {
        let (ms, _, mq) = ssd_bench::workload(seed, 10, 2, false, false);
        for _ in 0..4 {
            let _ = sess.satisfiable(&mq, &ms).unwrap();
            memo_dispatches += 1;
        }
    }
    let memo = sess.stats().feas_memo_table;
    println!(
        "feas-memo family: {memo_dispatches} repeat dispatches, {} hits / {} misses \
         ({:.1}% hit ratio)",
        memo.hits,
        memo.misses,
        memo.hit_ratio() * 100.0
    );

    // A small 3SAT instance exercises the general solver cell.
    let mut rng = StdRng::seed_from_u64(2003);
    let f = Sat3::random(&mut rng, 3, 5);
    let (s3, q3) = {
        let _parse = ssd_obs::span(rec.as_ref(), names::span::PARSE);
        let pool3 = SharedInterner::new();
        (
            parse_schema(&f.schema_text(), &pool3).unwrap(),
            parse_query(&f.query_text(), &pool3).unwrap(),
        )
    };
    let np_sat = sess.satisfiable(&q3, &s3).unwrap();

    // Type inference over the paper schema.
    let qi = parse_query("SELECT X WHERE Root = [paper -> X]", &pool).unwrap();
    let inferred = sess.infer(&qi, &s).unwrap();

    // Resource-governance family: a deliberately under-fueled dispatch on
    // an exponential 3SAT instance trips the budget (`budget_check` span,
    // `budget_exhausted` counter), and a ceiling-bounded session replays
    // mixed workloads until its caches shed entries (`cache_evicted`).
    let mut grng = StdRng::seed_from_u64(2004);
    let fg = Sat3::random(&mut grng, 8, 16);
    let (sg, qg) = {
        let poolg = SharedInterner::new();
        (
            parse_schema(&fg.schema_text(), &poolg).unwrap(),
            parse_query(&fg.query_text(), &poolg).unwrap(),
        )
    };
    let budget = Budget::unlimited().with_fuel(2_000);
    let verdict = sess.satisfiable_budgeted(&qg, &sg, &budget).unwrap();
    let trip = verdict
        .exhausted()
        .expect("2k fuel cannot finish the 2^8 family");
    let mut evict_sess = Session::with_recorder(rec.clone());
    evict_sess.set_limits(SessionLimits::unlimited().max_feas_memo_entries(1));
    for seed in [7201u64, 7202, 7203, 7204] {
        let (es, _, eq) = ssd_bench::workload(seed, 8, 2, false, false);
        let _ = evict_sess.satisfiable(&eq, &es).unwrap();
    }
    println!(
        "governance family: budget trip in `{}` ({}) after {} work units; \
         {} cache entries evicted under a 1-entry memo ceiling",
        trip.engine,
        trip.reason,
        trip.work_done,
        evict_sess.stats().evicted
    );

    println!(
        "verdicts: worked-example {:?}, trace-product {:?}, ptraces {}, 3SAT {:?}, \
         inferred assignments {}",
        worked.satisfiable,
        feas_sat.satisfiable,
        ptraces_sat,
        np_sat.satisfiable,
        inferred.len()
    );

    let report = rec.report();
    print!("{}", report.render_tree());
    println!("{}", sess.stats());
    std::fs::write(out, report.to_json_string()).expect("telemetry artifact is writable");
    println!("telemetry written to {}", out.display());
}

fn table2_shape() {
    println!("== Experiment T2: satisfiability complexity shapes ==");
    println!("-- PTIME cell: join-free queries over ordered schemas (trace product) --");
    println!("{:>6} {:>6} {:>12}", "|Q|", "|S|", "time (ms)");
    for num_defs in [2usize, 4, 8, 16, 32] {
        // Deep schemas keep the generated pattern tree growing with the
        // requested definition count.
        let mut rng = StdRng::seed_from_u64(1000 + num_defs as u64);
        let pool = SharedInterner::new();
        let schema = ssd_gen::schema_gen::ordered_schema(
            &mut rng,
            &pool,
            &ssd_gen::schema_gen::SchemaGenConfig {
                num_types: 8 + 2 * num_defs,
                fanout: 3,
                star_prob: 0.6,
                ..Default::default()
            },
        );
        let tg = ssd_schema::TypeGraph::new(&schema);
        let q = ssd_gen::query_gen::joinfree_query(
            &schema,
            &tg,
            &mut rng,
            &ssd_gen::query_gen::QueryGenConfig {
                num_defs,
                fanout: 3,
                path_len: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let ms = time_ms(|| {
            for _ in 0..10 {
                let _ = analyze(&q, &schema, &tg, &Constraints::none()).unwrap();
            }
        }) / 10.0;
        println!("{:>6} {:>6} {:>12.3}", q.size(), schema.size(), ms);
    }

    println!("-- NP cell: 3SAT reduction over unordered rigid types (general solver) --");
    println!(
        "{:>6} {:>8} {:>12} {:>6}",
        "vars", "clauses", "time (ms)", "sat"
    );
    for vars in [3usize, 4, 5, 6] {
        let mut rng = StdRng::seed_from_u64(2000 + vars as u64);
        let f = Sat3::random(&mut rng, vars, vars + 2);
        let pool = SharedInterner::new();
        let s = parse_schema(&f.schema_text(), &pool).unwrap();
        let q = parse_query(&f.query_text(), &pool).unwrap();
        let mut sat = false;
        let ms = time_ms(|| {
            sat = solver::solve(&q, &s).satisfiable;
        });
        assert_eq!(
            sat,
            f.brute_force(),
            "reduction must agree with brute force"
        );
        println!("{vars:>6} {:>8} {ms:>12.3} {sat:>6}", f.clauses.len());
    }
    println!();
}

fn optimizer_tables() {
    println!("== Experiment T4.2: edges explored, naive vs A_O ==");
    let pool = SharedInterner::new();

    // The paper's downward-pruning example (Section 4.2, example 1).
    let schema = parse_schema(
        "ROOT = [a->AC | a->AD | b->BD]; AC = [c->E]; AD = [d->E]; BD = [d->E]; E = [()]",
        &pool,
    )
    .unwrap();
    let q = parse_query("SELECT X WHERE Root = [a.c -> X]", &pool).unwrap();
    println!("-- §4.2 example 1 (downward pruning), query a.c --");
    println!("{:>6} {:>8} {:>8} {:>8}", "db", "naive", "A_O", "matches");
    for (name, data) in [
        ("DB1", "o1 = [a -> o2]; o2 = [c -> o3]; o3 = []"),
        ("DB2", "o1 = [a -> o2]; o2 = [d -> o3]; o3 = []"),
        ("DB3", "o1 = [b -> o2]; o2 = [d -> o3]; o3 = []"),
    ] {
        let g = parse_data_graph(data, &pool).unwrap();
        let c = compare(&q, &schema, &g).unwrap();
        assert_eq!(c.naive_results, c.adaptive_results);
        assert!(c.adaptive_cost <= c.naive_cost);
        println!(
            "{name:>6} {:>8} {:>8} {:>8}",
            c.naive_cost,
            c.adaptive_cost,
            c.naive_results.len()
        );
    }

    // Bibliography scan at scale.
    let pool2 = SharedInterner::new();
    let s2 = parse_schema(PAPER_SCHEMA, &pool2).unwrap();
    let q2 = parse_query("SELECT X WHERE Root = [paper.title -> X]", &pool2).unwrap();
    println!("-- bibliography titles scan (paper.title), growing documents --");
    println!(
        "{:>8} {:>8} {:>8} {:>8}",
        "papers", "naive", "A_O", "saved%"
    );
    for papers in [5usize, 20, 80, 320] {
        let g = parse_data_graph(&bibliography(papers, 3), &pool2).unwrap();
        let c = compare(&q2, &s2, &g).unwrap();
        assert_eq!(c.naive_results, c.adaptive_results);
        assert!(c.adaptive_cost <= c.naive_cost);
        let saved = 100.0 * (1.0 - c.adaptive_cost as f64 / c.naive_cost as f64);
        println!(
            "{papers:>8} {:>8} {:>8} {saved:>7.1}%",
            c.naive_cost, c.adaptive_cost
        );
    }
    println!();
}

fn feedback_example() {
    println!("== Experiment P4.1: the §4.1 feedback worked example ==");
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let q = parse_query(FEEDBACK_QUERY, &pool).unwrap();
    let fb = feedback_query(&q, &s).unwrap();
    println!("-- original --\n{q}");
    println!("-- feedback --\n{fb}");
    println!();
}

fn transform_example() {
    println!("== Experiment S4.3: inferred output schema ==");
    let pool = SharedInterner::new();
    let s = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let q = parse_query(
        "SELECT X, V WHERE Root = [paper -> P]; P = [_*.lastname -> X]; X = V",
        &pool,
    )
    .unwrap();
    let x = q.var_by_name("X").unwrap();
    let v = q.var_by_name("V").unwrap();
    let t = Transformation {
        query: q,
        rules: vec![
            ConstructEdge {
                source: SkolemTerm::constant("Names"),
                label: pool.intern("person"),
                target: ssd_transform::skolem::Target::Term(SkolemTerm::unary("P", x)),
            },
            ConstructEdge {
                source: SkolemTerm::unary("P", x),
                label: pool.intern("last"),
                target: ssd_transform::skolem::Target::CopyValue(v),
            },
        ],
        root_fun: "Names".to_owned(),
    };
    let out = infer_output_schema(&t, &s).unwrap();
    println!("{out}");
    println!();
}
