//! `bench_compare` — diff two `BENCH_summary.json` files and fail on
//! perf regressions.
//!
//! ```text
//! bench_compare [FLAGS] BASELINE.json CANDIDATE.json
//!
//!   --threshold R        regression ratio gate (default 1.30)
//!   --noise-floor-ns N   skip baselines with median < N ns (default 1000)
//!   --allow-missing      benches absent from the candidate are non-fatal
//!   --added-ok           candidate benches absent from the baseline are
//!                        reported as NOTE lines instead of failing (for
//!                        landing a new bench before its baseline row)
//!   --inject FACTOR      multiply candidate timings by FACTOR before
//!                        comparing (CI self-test: a synthetic regression
//!                        must make the exit code nonzero)
//! ```
//!
//! Exit codes: `0` clean, `1` regression (or missing bench without
//! `--allow-missing`), `2` usage or I/O error.

use std::process::ExitCode;

use ssd_bench::summary::{compare, parse_summary, CompareConfig, Summary};

struct Args {
    cfg: CompareConfig,
    inject: f64,
    baseline: String,
    candidate: String,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_compare: {msg}");
    eprintln!(
        "usage: bench_compare [--threshold R] [--noise-floor-ns N] \
         [--allow-missing] [--added-ok] [--inject FACTOR] BASELINE.json CANDIDATE.json"
    );
    ExitCode::from(2)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut cfg = CompareConfig::default();
    let mut inject = 1.0f64;
    let mut positional = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<f64, String> {
            let raw = it.next().ok_or_else(|| format!("{name} needs a value"))?;
            raw.parse::<f64>()
                .map_err(|_| format!("{name}: not a number: {raw}"))
        };
        match arg.as_str() {
            "--threshold" => cfg.threshold = flag_value("--threshold")?,
            "--noise-floor-ns" => cfg.noise_floor_ns = flag_value("--noise-floor-ns")?,
            "--inject" => inject = flag_value("--inject")?,
            "--allow-missing" => cfg.allow_missing = true,
            "--added-ok" => cfg.added_ok = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => positional.push(other.to_owned()),
        }
    }
    if cfg.threshold <= 1.0 || !cfg.threshold.is_finite() {
        return Err("--threshold must be a finite ratio > 1.0".to_owned());
    }
    if positional.len() != 2 {
        return Err(format!(
            "expected exactly 2 summary paths, got {}",
            positional.len()
        ));
    }
    let mut drain = positional.into_iter();
    let (baseline, candidate) = match (drain.next(), drain.next()) {
        (Some(b), Some(c)) => (b, c),
        _ => return Err("expected exactly 2 summary paths".to_owned()),
    };
    Ok(Args {
        cfg,
        inject,
        baseline,
        candidate,
    })
}

fn load(path: &str) -> Result<Summary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_summary(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };
    let old = match load(&args.baseline) {
        Ok(s) => s,
        Err(e) => return usage(&e),
    };
    let mut new = match load(&args.candidate) {
        Ok(s) => s,
        Err(e) => return usage(&e),
    };
    if args.inject != 1.0 {
        println!(
            "bench-compare: injecting synthetic {:.2}x slowdown into candidate",
            args.inject
        );
        for b in &mut new.benches {
            b.median_ns *= args.inject;
            b.p99_ns *= args.inject;
            b.min_ns *= args.inject;
            b.max_ns *= args.inject;
        }
    }
    let report = compare(&old, &new, &args.cfg);
    print!("{}", report.render(&args.cfg));
    if report.is_clean(&args.cfg) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
