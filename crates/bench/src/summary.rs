//! Canonical benchmark summaries (`BENCH_summary.json`) and the
//! noise-aware regression comparator behind the `bench-compare` binary.
//!
//! A summary is the machine-readable residue of one bench run:
//!
//! * every [`BenchRecord`](crate::harness::BenchRecord) (label, median,
//!   p99, min, max, sample count), and
//! * a flat map of named scalar metrics (cache hit ratios, telemetry
//!   overhead ratios, contention counts) published by the bench targets
//!   via [`set_metric`].
//!
//! [`compare`] diffs two summaries. A bench regresses only when the
//! evidence survives both noise gates: the old median must clear the
//! configured noise floor (sub-microsecond benches jitter too much for a
//! ratio test), the new median must exceed `old_median × threshold`,
//! *and* the sample ranges must be disjoint (`new_min > old_max`) so a
//! single loaded-machine outlier cannot fail CI. Benches present in the
//! baseline but absent from the candidate are reported as missing —
//! silently dropping a bench is how regressions hide.

use ssd_base::sync::Mutex;
use std::collections::BTreeMap;

use crate::harness::{records, BenchRecord};
use ssd_obs::json::JsonValue;

/// Scalar metrics published by bench targets for the current process.
static METRICS: Mutex<Option<BTreeMap<String, f64>>> = Mutex::new(None);

/// Publishes a named scalar metric (hit ratio, overhead ratio, …) into
/// the summary produced by [`summary_json`] / [`flush_summary`].
pub fn set_metric(name: &str, value: f64) {
    let mut guard = METRICS.lock().unwrap_or_else(|e| e.into_inner());
    guard
        .get_or_insert_with(BTreeMap::new)
        .insert(name.to_owned(), value);
}

/// A snapshot of the metrics published so far.
pub fn metrics() -> BTreeMap<String, f64> {
    METRICS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_default()
}

/// One bench's row in a summary document.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryBench {
    /// Full `group/function/parameter` label.
    pub label: String,
    /// Median ns per iteration.
    pub median_ns: f64,
    /// 99th-percentile sample, ns per iteration.
    pub p99_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Slowest sample, ns per iteration.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: u64,
}

/// A parsed `BENCH_summary.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Bench rows, in file order.
    pub benches: Vec<SummaryBench>,
    /// Named scalar metrics.
    pub metrics: BTreeMap<String, f64>,
}

impl Summary {
    /// Looks up a bench row by label.
    pub fn bench(&self, label: &str) -> Option<&SummaryBench> {
        self.benches.iter().find(|b| b.label == label)
    }
}

fn bench_to_json(b: &SummaryBench) -> JsonValue {
    JsonValue::obj(vec![
        ("label", JsonValue::str(b.label.clone())),
        ("median_ns", JsonValue::Num(b.median_ns)),
        ("p99_ns", JsonValue::Num(b.p99_ns)),
        ("min_ns", JsonValue::Num(b.min_ns)),
        ("max_ns", JsonValue::Num(b.max_ns)),
        ("samples", JsonValue::num(b.samples)),
    ])
}

fn record_to_bench(r: &BenchRecord) -> SummaryBench {
    SummaryBench {
        label: r.label.clone(),
        median_ns: r.median_ns,
        p99_ns: r.p99_ns,
        min_ns: r.min_ns,
        max_ns: r.max_ns,
        samples: r.samples as u64,
    }
}

/// Serializes a [`Summary`] as a version-1 document.
pub fn to_json_string(summary: &Summary) -> String {
    JsonValue::obj(vec![
        ("version", JsonValue::num(1)),
        (
            "benches",
            JsonValue::Arr(summary.benches.iter().map(bench_to_json).collect()),
        ),
        (
            "metrics",
            JsonValue::Obj(
                summary
                    .metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                    .collect(),
            ),
        ),
    ])
    .to_json_string()
}

/// The current process's summary: every completed bench plus all
/// published metrics.
pub fn current_summary() -> Summary {
    Summary {
        benches: records().iter().map(record_to_bench).collect(),
        metrics: metrics(),
    }
}

/// Serialized [`current_summary`] — the canonical `BENCH_summary.json`.
pub fn summary_json() -> String {
    to_json_string(&current_summary())
}

/// When `SSD_BENCH_SUMMARY` is set, writes [`summary_json`] to the path
/// it names (`1` or empty selects `BENCH_summary.json`). Called by
/// [`criterion_main!`](crate::criterion_main) after every group has run.
pub fn flush_summary() {
    let Ok(dest) = std::env::var("SSD_BENCH_SUMMARY") else {
        return;
    };
    let path = match dest.as_str() {
        "" | "1" => "BENCH_summary.json",
        other => other,
    };
    match std::fs::write(path, summary_json()) {
        Ok(()) => println!("bench summary written to {path}"),
        Err(e) => eprintln!("bench summary write to {path} failed: {e}"),
    }
}

fn field_f64(v: &JsonValue, key: &str) -> Option<f64> {
    v.get(key).and_then(JsonValue::as_f64)
}

/// Parses a summary document produced by [`to_json_string`] (or by the
/// `p99`-less version-1 telemetry export; a missing `p99_ns` falls back
/// to `max_ns`). Returns a description of the first malformed field.
pub fn parse_summary(text: &str) -> Result<Summary, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let benches_json = doc
        .get("benches")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"benches\" array")?;
    let mut benches = Vec::with_capacity(benches_json.len());
    for (i, b) in benches_json.iter().enumerate() {
        let label = b
            .get("label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("bench #{i}: missing \"label\""))?
            .to_owned();
        let median_ns =
            field_f64(b, "median_ns").ok_or_else(|| format!("bench {label}: missing median_ns"))?;
        let min_ns =
            field_f64(b, "min_ns").ok_or_else(|| format!("bench {label}: missing min_ns"))?;
        let max_ns =
            field_f64(b, "max_ns").ok_or_else(|| format!("bench {label}: missing max_ns"))?;
        let p99_ns = field_f64(b, "p99_ns").unwrap_or(max_ns);
        let samples = b
            .get("samples")
            .and_then(JsonValue::as_u64)
            .unwrap_or_default();
        benches.push(SummaryBench {
            label,
            median_ns,
            p99_ns,
            min_ns,
            max_ns,
            samples,
        });
    }
    let mut metrics = BTreeMap::new();
    if let Some(JsonValue::Obj(fields)) = doc.get("metrics") {
        for (k, v) in fields {
            if let Some(f) = v.as_f64() {
                metrics.insert(k.clone(), f);
            }
        }
    }
    Ok(Summary { benches, metrics })
}

/// Knobs for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Candidate median must exceed `baseline_median × threshold` to count
    /// as a regression.
    pub threshold: f64,
    /// Baselines with a median below this are skipped (too noisy for a
    /// ratio test).
    pub noise_floor_ns: f64,
    /// When false, a bench present in the baseline but missing from the
    /// candidate fails the comparison.
    pub allow_missing: bool,
    /// When false, a bench present in the candidate but absent from the
    /// baseline fails the comparison (the baseline needs a refresh); when
    /// true such rows are reported as NOTE lines and stay non-fatal, so a
    /// freshly added bench can land before its baseline row does.
    pub added_ok: bool,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            threshold: 1.30,
            noise_floor_ns: 1_000.0,
            allow_missing: false,
            added_ok: false,
        }
    }
}

/// One bench that regressed past every noise gate.
#[derive(Clone, Debug)]
pub struct Regression {
    /// The regressed bench's label.
    pub label: String,
    /// Baseline median, ns.
    pub old_median_ns: f64,
    /// Candidate median, ns.
    pub new_median_ns: f64,
    /// `new_median / old_median`.
    pub ratio: f64,
}

/// The outcome of diffing a candidate summary against a baseline.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Benches that regressed (all noise gates passed).
    pub regressions: Vec<Regression>,
    /// Benches slower than threshold but with overlapping sample ranges
    /// (reported, never fatal).
    pub suspects: Vec<Regression>,
    /// Baseline labels absent from the candidate.
    pub missing: Vec<String>,
    /// Candidate labels absent from the baseline (newly added benches).
    pub added: Vec<String>,
    /// Number of labels compared.
    pub compared: usize,
    /// Number of baselines skipped under the noise floor.
    pub skipped_noisy: usize,
}

impl CompareReport {
    /// True when the comparison should pass CI.
    pub fn is_clean(&self, cfg: &CompareConfig) -> bool {
        self.regressions.is_empty()
            && (cfg.allow_missing || self.missing.is_empty())
            && (cfg.added_ok || self.added.is_empty())
    }

    /// Human-readable multi-line report.
    pub fn render(&self, cfg: &CompareConfig) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-compare: {} compared, {} under noise floor ({} ns), threshold {:.2}x",
            self.compared, self.skipped_noisy, cfg.noise_floor_ns, cfg.threshold
        );
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "  REGRESSION {}: median {:.0} ns -> {:.0} ns ({:.2}x, ranges disjoint)",
                r.label, r.old_median_ns, r.new_median_ns, r.ratio
            );
        }
        for r in &self.suspects {
            let _ = writeln!(
                out,
                "  suspect    {}: median {:.0} ns -> {:.0} ns ({:.2}x, ranges overlap - not fatal)",
                r.label, r.old_median_ns, r.new_median_ns, r.ratio
            );
        }
        for m in &self.missing {
            let tag = if cfg.allow_missing {
                "missing    "
            } else {
                "MISSING    "
            };
            let _ = writeln!(out, "  {tag}{m}: present in baseline, absent in candidate");
        }
        for a in &self.added {
            if cfg.added_ok {
                let _ = writeln!(
                    out,
                    "  NOTE       {a}: new bench, absent from baseline (added-ok)"
                );
            } else {
                let _ = writeln!(
                    out,
                    "  ADDED      {a}: absent from baseline - refresh the baseline \
                     or pass --added-ok"
                );
            }
        }
        if self.regressions.is_empty() && self.missing.is_empty() && self.added.is_empty() {
            let _ = writeln!(out, "  ok: no regressions");
        }
        out
    }
}

/// Diffs `new` against the `old` baseline under `cfg`. See the
/// [module docs](self) for the exact regression rule.
pub fn compare(old: &Summary, new: &Summary, cfg: &CompareConfig) -> CompareReport {
    let mut report = CompareReport::default();
    for nb in &new.benches {
        if old.bench(&nb.label).is_none() {
            report.added.push(nb.label.clone());
        }
    }
    for ob in &old.benches {
        let Some(nb) = new.bench(&ob.label) else {
            report.missing.push(ob.label.clone());
            continue;
        };
        report.compared += 1;
        if ob.median_ns < cfg.noise_floor_ns {
            report.skipped_noisy += 1;
            continue;
        }
        let ratio = nb.median_ns / ob.median_ns.max(f64::MIN_POSITIVE);
        if ratio <= cfg.threshold {
            continue;
        }
        let finding = Regression {
            label: ob.label.clone(),
            old_median_ns: ob.median_ns,
            new_median_ns: nb.median_ns,
            ratio,
        };
        // Disjoint sample ranges mean no single outlier explains the
        // slowdown; overlapping ranges stay advisory.
        if nb.min_ns > ob.max_ns {
            report.regressions.push(finding);
        } else {
            report.suspects.push(finding);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(label: &str, median: f64, min: f64, max: f64) -> SummaryBench {
        SummaryBench {
            label: label.to_owned(),
            median_ns: median,
            p99_ns: max,
            min_ns: min,
            max_ns: max,
            samples: 20,
        }
    }

    fn summary(benches: Vec<SummaryBench>) -> Summary {
        Summary {
            benches,
            metrics: BTreeMap::new(),
        }
    }

    #[test]
    fn roundtrip_through_json() {
        let mut s = summary(vec![bench("g/a", 5000.0, 4800.0, 5600.0)]);
        s.metrics.insert("hit_ratio".to_owned(), 0.93);
        let text = to_json_string(&s);
        let parsed = parse_summary(&text).expect("own output parses");
        assert_eq!(parsed, s);
    }

    #[test]
    fn missing_p99_falls_back_to_max() {
        let text = r#"{"version":1,"benches":[{"label":"x","median_ns":10,"min_ns":9,"max_ns":20,"samples":3}]}"#;
        let parsed = parse_summary(text).expect("parses");
        assert_eq!(parsed.benches[0].p99_ns, 20.0);
    }

    #[test]
    fn malformed_summary_is_rejected() {
        assert!(parse_summary("{").is_err());
        assert!(parse_summary(r#"{"version":1}"#).is_err());
        assert!(parse_summary(r#"{"benches":[{"median_ns":1}]}"#).is_err());
    }

    #[test]
    fn clean_self_compare() {
        let s = summary(vec![
            bench("g/a", 5000.0, 4800.0, 5600.0),
            bench("g/b", 120.0, 100.0, 150.0),
        ]);
        let cfg = CompareConfig::default();
        let report = compare(&s, &s, &cfg);
        assert!(report.is_clean(&cfg), "{}", report.render(&cfg));
        assert_eq!(report.compared, 2);
        assert_eq!(report.skipped_noisy, 1); // g/b is under the floor
    }

    #[test]
    fn disjoint_slowdown_regresses() {
        let old = summary(vec![bench("g/a", 5000.0, 4800.0, 5600.0)]);
        let new = summary(vec![bench("g/a", 9000.0, 8700.0, 9400.0)]);
        let cfg = CompareConfig::default();
        let report = compare(&old, &new, &cfg);
        assert_eq!(report.regressions.len(), 1);
        assert!(!report.is_clean(&cfg));
        assert!(report.render(&cfg).contains("REGRESSION g/a"));
    }

    #[test]
    fn overlapping_slowdown_is_only_suspect() {
        let old = summary(vec![bench("g/a", 5000.0, 4800.0, 9100.0)]);
        let new = summary(vec![bench("g/a", 9000.0, 8700.0, 9400.0)]);
        let cfg = CompareConfig::default();
        let report = compare(&old, &new, &cfg);
        assert!(report.regressions.is_empty());
        assert_eq!(report.suspects.len(), 1);
        assert!(report.is_clean(&cfg));
    }

    #[test]
    fn noisy_baseline_is_skipped() {
        let old = summary(vec![bench("g/tiny", 100.0, 90.0, 110.0)]);
        let new = summary(vec![bench("g/tiny", 400.0, 380.0, 420.0)]);
        let cfg = CompareConfig::default();
        let report = compare(&old, &new, &cfg);
        assert!(report.regressions.is_empty());
        assert_eq!(report.skipped_noisy, 1);
    }

    #[test]
    fn missing_bench_fails_unless_allowed() {
        let old = summary(vec![bench("g/a", 5000.0, 4800.0, 5600.0)]);
        let new = summary(vec![]);
        let strict = CompareConfig::default();
        let report = compare(&old, &new, &strict);
        assert_eq!(report.missing, vec!["g/a".to_owned()]);
        assert!(!report.is_clean(&strict));
        let lax = CompareConfig {
            allow_missing: true,
            ..strict
        };
        assert!(compare(&old, &new, &lax).is_clean(&lax));
    }

    #[test]
    fn added_bench_fails_unless_added_ok() {
        let old = summary(vec![bench("g/a", 5000.0, 4800.0, 5600.0)]);
        let new = summary(vec![
            bench("g/a", 5000.0, 4800.0, 5600.0),
            bench("g/new", 7000.0, 6800.0, 7600.0),
        ]);
        let strict = CompareConfig::default();
        let report = compare(&old, &new, &strict);
        assert_eq!(report.added, vec!["g/new".to_owned()]);
        assert!(!report.is_clean(&strict));
        assert!(report.render(&strict).contains("ADDED      g/new"));
        let lax = CompareConfig {
            added_ok: true,
            ..strict
        };
        let report = compare(&old, &new, &lax);
        assert!(report.is_clean(&lax), "{}", report.render(&lax));
        assert!(report.render(&lax).contains("NOTE       g/new"));
    }

    #[test]
    fn added_ok_does_not_mask_missing_or_regressions() {
        let old = summary(vec![
            bench("g/a", 5000.0, 4800.0, 5600.0),
            bench("g/gone", 5000.0, 4800.0, 5600.0),
        ]);
        let new = summary(vec![
            bench("g/a", 9000.0, 8700.0, 9400.0),
            bench("g/new", 7000.0, 6800.0, 7600.0),
        ]);
        let cfg = CompareConfig {
            added_ok: true,
            ..CompareConfig::default()
        };
        let report = compare(&old, &new, &cfg);
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.missing, vec!["g/gone".to_owned()]);
        assert!(!report.is_clean(&cfg));
    }

    #[test]
    fn published_metrics_land_in_summary() {
        set_metric("test_summary_metric", 42.5);
        let s = current_summary();
        assert_eq!(s.metrics.get("test_summary_metric"), Some(&42.5));
        let parsed = parse_summary(&summary_json()).expect("parses");
        assert_eq!(parsed.metrics.get("test_summary_metric"), Some(&42.5));
    }
}
