//! Shared helpers for the reproduction benchmarks (see `benches/` and the
//! `experiments` binary).
//!
//! Each bench target regenerates one row of the experiment index in
//! `DESIGN.md`; `EXPERIMENTS.md` records paper-claim vs measured shape.

pub mod harness;
pub mod summary;

use ssd_base::rng::StdRng;
use ssd_base::SharedInterner;
use ssd_gen::query_gen::{joinfree_query, QueryGenConfig};
use ssd_gen::schema_gen::{ordered_schema, SchemaGenConfig};
use ssd_query::Query;
use ssd_schema::{Schema, TypeGraph};

/// A deterministic workload: random ordered (optionally tagged) schema of
/// `num_types` collection types with a join-free query of `num_defs`
/// definitions.
pub fn workload(
    seed: u64,
    num_types: usize,
    num_defs: usize,
    tagged: bool,
    wildcard_prefix: bool,
) -> (Schema, TypeGraph, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = SharedInterner::new();
    let scfg = SchemaGenConfig {
        num_types,
        tagged,
        ..Default::default()
    };
    let schema = ordered_schema(&mut rng, &pool, &scfg);
    let tg = TypeGraph::new(&schema);
    let qcfg = QueryGenConfig {
        num_defs,
        wildcard_prefix,
        ..Default::default()
    };
    let q = joinfree_query(&schema, &tg, &mut rng, &qcfg).expect("generated query parses");
    (schema, tg, q)
}

/// Test twin of `benches/concurrency.rs`: the bench measures scaling, the
/// twin asserts the invariants the bench leans on — here, that snapshot
/// restore publishes through the same double-checked insert-if-absent
/// path as ordinary misses, so queries racing a restore never observe a
/// half-hydrated table.
#[cfg(test)]
mod concurrency_twin {
    use std::sync::atomic::{AtomicBool, Ordering};

    use ssd_core::Session;

    use super::workload;

    /// The concurrency bench's mixed-workload shape, shrunk to test size.
    fn suite() -> Vec<(ssd_schema::Schema, ssd_query::Query)> {
        [
            (1100u64, 6usize, 1usize, false),
            (1102, 12, 2, false),
            (1106, 12, 2, true),
        ]
        .iter()
        .map(|&(seed, nt, nd, tagged)| {
            let (s, _tg, q) = workload(seed, nt, nd, tagged, false);
            (s, q)
        })
        .collect()
    }

    #[test]
    fn queries_racing_a_snapshot_restore_never_see_partial_state() {
        let items = suite();
        // Cold truth + a warmed image to restore from.
        let warm = Session::new();
        let cold: Vec<bool> = items
            .iter()
            .map(|(s, q)| warm.satisfiable(q, s).unwrap().satisfiable)
            .collect();
        let dir = std::env::temp_dir().join(format!("ssd-conc-restore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("race.snap");
        let schemas: Vec<_> = items.iter().map(|(s, _)| s).collect();
        warm.save_snapshot(&path, &schemas).unwrap();

        // Fresh session: reader threads hammer the corpus while the main
        // thread hydrates it from the snapshot mid-flight. Every verdict,
        // before/during/after the restore, must equal cold — a reader that
        // caught a half-published DFA table or memo entry would diverge
        // (or panic), and the checked constructors would reject it.
        let sess = Session::new();
        let done = AtomicBool::new(false);
        let outcome = std::thread::scope(|scope| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let sess = &sess;
                    let items = &items;
                    let cold = &cold;
                    let done = &done;
                    scope.spawn(move || {
                        let mut passes = 0usize;
                        while !done.load(Ordering::Relaxed) || passes < 8 {
                            for ((s, q), &want) in items.iter().zip(cold) {
                                assert_eq!(
                                    sess.satisfiable(q, s).unwrap().satisfiable,
                                    want,
                                    "verdict diverged while racing restore"
                                );
                            }
                            passes += 1;
                        }
                        passes
                    })
                })
                .collect();
            let out = sess.load_snapshot(&path, &schemas);
            // A second concurrent-ish restore must be an idempotent no-op
            // (insert-if-absent drops duplicates rather than replacing
            // entries out from under a reader).
            let again = sess.load_snapshot(&path, &schemas);
            done.store(true, Ordering::Relaxed);
            for r in readers {
                assert!(r.join().unwrap() >= 8);
            }
            assert_eq!(again.sections_rejected, 0, "{again}");
            out
        });
        std::fs::remove_file(&path).ok();
        assert_eq!(outcome.sections_rejected, 0, "{outcome}");
        assert!(outcome.any_loaded());
        // After the dust settles the session is warm: the whole corpus is
        // answered from the hydrated caches.
        let stats_before = sess.stats().feas_memo_table.misses;
        for ((s, q), &want) in items.iter().zip(&cold) {
            assert_eq!(sess.satisfiable(q, s).unwrap().satisfiable, want);
        }
        assert_eq!(sess.stats().feas_memo_table.misses, stats_before);
    }

    #[test]
    fn restore_racing_a_corrupt_snapshot_stays_cold_correct() {
        let items = suite();
        let warm = Session::new();
        let cold: Vec<bool> = items
            .iter()
            .map(|(s, q)| warm.satisfiable(q, s).unwrap().satisfiable)
            .collect();
        let dir = std::env::temp_dir().join(format!("ssd-conc-restore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("race-corrupt.snap");
        let schemas: Vec<_> = items.iter().map(|(s, _)| s).collect();
        warm.save_snapshot(&path, &schemas).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let sess = Session::new();
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let sess = &sess;
                    let items = &items;
                    let cold = &cold;
                    scope.spawn(move || {
                        for _ in 0..16 {
                            for ((s, q), &want) in items.iter().zip(cold) {
                                assert_eq!(sess.satisfiable(q, s).unwrap().satisfiable, want);
                            }
                        }
                    })
                })
                .collect();
            let _ = sess.load_snapshot(&path, &schemas);
            for r in readers {
                r.join().unwrap();
            }
        });
        std::fs::remove_file(&path).ok();
        for ((s, q), &want) in items.iter().zip(&cold) {
            assert_eq!(sess.satisfiable(q, s).unwrap().satisfiable, want);
        }
    }
}
