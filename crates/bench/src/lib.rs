//! Shared helpers for the reproduction benchmarks (see `benches/` and the
//! `experiments` binary).
//!
//! Each bench target regenerates one row of the experiment index in
//! `DESIGN.md`; `EXPERIMENTS.md` records paper-claim vs measured shape.

pub mod harness;
pub mod summary;

use ssd_base::rng::StdRng;
use ssd_base::SharedInterner;
use ssd_gen::query_gen::{joinfree_query, QueryGenConfig};
use ssd_gen::schema_gen::{ordered_schema, SchemaGenConfig};
use ssd_query::Query;
use ssd_schema::{Schema, TypeGraph};

/// A deterministic workload: random ordered (optionally tagged) schema of
/// `num_types` collection types with a join-free query of `num_defs`
/// definitions.
pub fn workload(
    seed: u64,
    num_types: usize,
    num_defs: usize,
    tagged: bool,
    wildcard_prefix: bool,
) -> (Schema, TypeGraph, Query) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = SharedInterner::new();
    let scfg = SchemaGenConfig {
        num_types,
        tagged,
        ..Default::default()
    };
    let schema = ordered_schema(&mut rng, &pool, &scfg);
    let tg = TypeGraph::new(&schema);
    let qcfg = QueryGenConfig {
        num_defs,
        wildcard_prefix,
        ..Default::default()
    };
    let q = joinfree_query(&schema, &tg, &mut rng, &qcfg).expect("generated query parses");
    (schema, tg, q)
}
