//! # `ssd` — Type Inference for Queries on Semistructured Data
//!
//! A full implementation of Milo & Suciu, *"Type Inference for Queries on
//! Semistructured Data"*, PODS 1999: the ordered OEM data model, ScmDL
//! schemas (including DTD import), selection queries with regular path
//! expressions, the **traces technique**, satisfiability / type checking /
//! type inference with the paper's complexity classification (Table 2), and
//! the three applications — feedback queries, adaptive optimal evaluation,
//! and Skolem-function transformations.
//!
//! This crate is a facade that re-exports the workspace crates:
//!
//! * [`base`] — interning, ids, multisets;
//! * [`automata`] — regexes and automata over symbolic alphabets;
//! * [`model`] — data graphs;
//! * [`schema`] — ScmDL schemas, DTDs, conformance;
//! * [`query`] — patterns, selection queries, evaluation;
//! * [`core`] — the traces technique and the inference problems;
//! * [`lint`] — span-aware static analysis with witness-carrying
//!   diagnostics;
//! * [`obs`] — zero-dependency tracing, counters, and telemetry export;
//! * [`feedback`] — feedback queries (Section 4.1);
//! * [`optimizer`] — the adaptive optimal evaluator (Section 4.2);
//! * [`transform`] — Skolem transformations (Section 4.3);
//! * [`gen`] — workload generators used by the reproduction benchmarks.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![deny(missing_docs)]

pub use ssd_automata as automata;
pub use ssd_base as base;
pub use ssd_core as core;
pub use ssd_feedback as feedback;
pub use ssd_gen as gen;
pub use ssd_lint as lint;
pub use ssd_model as model;
pub use ssd_obs as obs;
pub use ssd_optimizer as optimizer;
pub use ssd_query as query;
pub use ssd_schema as schema;
pub use ssd_snapshot as snapshot;
pub use ssd_transform as transform;
