//! The optimization application (Section 4.2): downward and sideward
//! pruning of the adaptive evaluator A_O vs the naive strategy, measured
//! in edges explored (the paper's cost function).
//!
//! Run with `cargo run --example optimizer_pruning`.

use ssd::base::SharedInterner;
use ssd::gen::corpora::{bibliography, PAPER_SCHEMA};
use ssd::model::parse_data_graph;
use ssd::optimizer::compare;
use ssd::query::parse_query;
use ssd::schema::parse_schema;

fn main() {
    let pool = SharedInterner::new();

    // Section 4.2, example 1: downward pruning.
    let schema = parse_schema(
        "ROOT = [a->AC | a->AD | b->BD]; AC = [c->E]; AD = [d->E]; BD = [d->E]; E = [()]",
        &pool,
    )
    .unwrap();
    let q = parse_query("SELECT X WHERE Root = [a.c -> X]", &pool).unwrap();
    println!("query: SELECT X WHERE Root = [a.c -> X]");
    for (name, data) in [
        (
            "DB1 = [a→[c→[]]]",
            "o1 = [a -> o2]; o2 = [c -> o3]; o3 = []",
        ),
        (
            "DB2 = [a→[d→[]]]",
            "o1 = [a -> o2]; o2 = [d -> o3]; o3 = []",
        ),
        (
            "DB3 = [b→[d→[]]]",
            "o1 = [b -> o2]; o2 = [d -> o3]; o3 = []",
        ),
    ] {
        let g = parse_data_graph(data, &pool).unwrap();
        let c = compare(&q, &schema, &g).unwrap();
        println!(
            "  {name:24} naive={} A_O={} matches={}",
            c.naive_cost,
            c.adaptive_cost,
            c.naive_results.len()
        );
    }

    // At scale: scanning titles of a bibliography. A_O skips every
    // author subtree (the schema proves titles only occur first).
    let pool2 = SharedInterner::new();
    let s2 = parse_schema(PAPER_SCHEMA, &pool2).unwrap();
    let q2 = parse_query("SELECT X WHERE Root = [paper.title -> X]", &pool2).unwrap();
    println!("\nquery: SELECT X WHERE Root = [paper.title -> X]");
    for papers in [10usize, 100] {
        let g = parse_data_graph(&bibliography(papers, 3), &pool2).unwrap();
        let c = compare(&q2, &s2, &g).unwrap();
        println!(
            "  {papers:4} papers: naive={:5} A_O={:5}  ({:.1}% fewer edges)",
            c.naive_cost,
            c.adaptive_cost,
            100.0 * (1.0 - c.adaptive_cost as f64 / c.naive_cost as f64)
        );
    }
}
