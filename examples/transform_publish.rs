//! The transformation application (Section 4.3): restructure a
//! bibliography with Skolem functions, infer the most specific output
//! schema, and type-check the transformation against a target DTD-style
//! schema.
//!
//! Run with `cargo run --example transform_publish`.

use ssd::base::SharedInterner;
use ssd::gen::corpora::{bibliography, PAPER_SCHEMA};
use ssd::model::parse_data_graph;
use ssd::query::parse_query;
use ssd::schema::{conforms, parse_schema};
use ssd::transform::skolem::Target;
use ssd::transform::{
    apply, check_output_schema, infer_output_schema, ConstructEdge, SkolemTerm, Transformation,
};

fn main() {
    let pool = SharedInterner::new();
    let schema = parse_schema(PAPER_SCHEMA, &pool).unwrap();

    // Publish an author index: Names --person--> P(x) --last--> value.
    let q = parse_query(
        "SELECT X, V WHERE Root = [paper -> P]; P = [_*.lastname -> X]; X = V",
        &pool,
    )
    .unwrap();
    let x = q.var_by_name("X").unwrap();
    let v = q.var_by_name("V").unwrap();
    let t = Transformation {
        query: q,
        rules: vec![
            ConstructEdge {
                source: SkolemTerm::constant("Names"),
                label: pool.intern("person"),
                target: Target::Term(SkolemTerm::unary("P", x)),
            },
            ConstructEdge {
                source: SkolemTerm::unary("P", x),
                label: pool.intern("last"),
                target: Target::CopyValue(v),
            },
        ],
        root_fun: "Names".to_owned(),
    };

    let input = parse_data_graph(&bibliography(3, 2), &pool).unwrap();
    let output = apply(&t, &input).unwrap();
    println!(
        "transformed {} input nodes into {} output nodes",
        input.len(),
        output.len()
    );

    // Output-schema inference (single-variable Skolem functions).
    let out_schema = infer_output_schema(&t, &schema).unwrap();
    println!("\ninferred output schema:\n{out_schema}\n");
    assert!(conforms(&output, &out_schema).is_some());
    println!("the actual output conforms to the inferred schema ✓");

    // Transformation type checking against a published target schema.
    let target = parse_schema(
        "ROOT = {(person->&P)*}; &P = {(last->L)*}; L = string",
        &pool,
    )
    .unwrap();
    let ok = check_output_schema(&t, &schema, &target).unwrap();
    println!("every output conforms to the target schema: {ok}");
}
