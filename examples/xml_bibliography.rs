//! XML + DTD workflow: import a DTD as a schema (the paper's DTD− class),
//! import an XML document, validate it, and run the paper's
//! Abiteboul/Vianu query (Section 2).
//!
//! Run with `cargo run --example xml_bibliography`.

use ssd::base::SharedInterner;
use ssd::core::satisfiable;
use ssd::gen::corpora::{bibliography, PAPER_QUERY, PAPER_SCHEMA, SINGLE_AUTHOR_SCHEMA};
use ssd::model::{parse_data_graph, parse_xml};
use ssd::query::{is_nonempty, parse_query};
use ssd::schema::{conforms, parse_dtd, parse_schema, SchemaClass};

fn main() {
    let pool = SharedInterner::new();

    // The paper's DTD, imported as a schema.
    let dtd_schema = parse_dtd(
        r#"<!ELEMENT paper (title,(author)*) >
           <!ELEMENT title #PCDATA >
           <!ELEMENT author (name, email) >
           <!ELEMENT name (firstname,lastname) >
           <!ELEMENT firstname #PCDATA >
           <!ELEMENT lastname #PCDATA >
           <!ELEMENT email #PCDATA >"#,
        &pool,
    )
    .expect("DTD parses");
    let class = SchemaClass::of(&dtd_schema);
    println!(
        "DTD class: ordered={} tagged={} tree={} (DTD− = {})",
        class.ordered,
        class.tagged,
        class.tree,
        class.is_dtd_minus()
    );

    // The paper's XML fragment, wrapped so the root element is `paper`.
    let xml = r#"<paper><title> A real nice paper </title>
        <author><name><firstname> John </firstname>
        <lastname> Smith </lastname></name>
        <email> js@example.org </email></author></paper>"#;
    let doc = parse_xml(xml, &pool).expect("XML parses");
    // The importer wraps the root element; validate against a wrapper
    // schema whose root points at E_paper.
    let wrapped = parse_schema(&format!("WRAP = [paper->E_paper]; {dtd_schema}"), &pool)
        .expect("wrapper schema parses");
    assert!(conforms(&doc, &wrapped).is_some());
    println!("the XML fragment validates against the DTD");

    // The Abiteboul/Vianu query on a larger generated bibliography.
    let schema = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let q = parse_query(PAPER_QUERY, &pool).unwrap();
    let sat = satisfiable(&q, &schema).unwrap();
    println!("Abiteboul/Vianu query satisfiable: {}", sat.satisfiable);

    let g = parse_data_graph(&bibliography(5, 2), &pool).unwrap();
    println!(
        "on a 5-paper bibliography the query matches: {}",
        is_nonempty(&q, &g)
    );

    // Against the single-author schema it is unsatisfiable (Section 3).
    let single = parse_schema(SINGLE_AUTHOR_SCHEMA, &pool).unwrap();
    let q2 = parse_query(
        r#"SELECT X1
           WHERE Root = [paper -> X1];
                 X1 = [author._+ -> X2, author._+ -> X3];
                 X2 = "Vianu"; X3 = "Abiteboul""#,
        &pool,
    )
    .unwrap();
    let sat2 = satisfiable(&q2, &single).unwrap();
    println!(
        "against the single-author schema: satisfiable = {}",
        sat2.satisfiable
    );
}
