//! The query-formulation application (Section 4.1): compute the feedback
//! query for the paper's worked example and show the minimal rewriting.
//!
//! Run with `cargo run --example query_feedback`.

use ssd::base::SharedInterner;
use ssd::feedback::feedback_query;
use ssd::gen::corpora::{FEEDBACK_QUERY, PAPER_SCHEMA};
use ssd::query::parse_query;
use ssd::schema::parse_schema;

fn main() {
    let pool = SharedInterner::new();
    let schema = parse_schema(PAPER_SCHEMA, &pool).unwrap();
    let q = parse_query(FEEDBACK_QUERY, &pool).unwrap();

    println!("user query:\n{q}\n");
    let fb = feedback_query(&q, &schema).expect("feedback computes");
    println!("feedback query (minimal, schema-equivalent):\n{fb}\n");
    println!(
        "reading: the leading/trailing _* were redundant, and name's tail \
         can only be firstname or lastname — exactly the paper's example."
    );
}
