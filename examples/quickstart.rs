//! Quickstart: parse a schema, a document, and a query; check conformance;
//! run the query; decide satisfiability; infer types.
//!
//! Run with `cargo run --example quickstart`.

use ssd::base::SharedInterner;
use ssd::core::{infer, satisfiable};
use ssd::model::parse_data_graph;
use ssd::query::{parse_query, select_results};
use ssd::schema::{conforms, parse_schema};

fn main() {
    let pool = SharedInterner::new();

    // The paper's bibliography schema (Section 2).
    let schema = parse_schema(
        r#"DOCUMENT = [(paper->PAPER)*];
           PAPER = [title->TITLE.(author->AUTHOR)*];
           AUTHOR = [name->NAME.email->EMAIL];
           NAME = [firstname->FIRSTNAME.lastname->LASTNAME];
           TITLE = string; FIRSTNAME = string;
           LASTNAME = string; EMAIL = string"#,
        &pool,
    )
    .expect("schema parses");

    // A document in the textual data-graph syntax (Table 1).
    let doc = parse_data_graph(
        r#"o1 = [paper -> o2];
           o2 = [title -> o3, author -> o4];
           o3 = "Type Inference for Queries on Semistructured Data";
           o4 = [name -> o5, email -> o6];
           o5 = [firstname -> o7, lastname -> o8];
           o6 = "suciu@research.att.com"; o7 = "Dan"; o8 = "Suciu""#,
        &pool,
    )
    .expect("document parses");

    // Conformance (Definition 2.1).
    let assignment = conforms(&doc, &schema).expect("document conforms to schema");
    println!("document conforms; o4 is assigned type {}", {
        let o4 = doc.by_name("o4").unwrap();
        schema.name(assignment[o4.index()])
    });

    // A selection query with a regular path expression.
    let q = parse_query(
        "SELECT X WHERE Root = [paper -> P]; P = [_*.lastname -> X]",
        &pool,
    )
    .expect("query parses");

    // Evaluate it on the document.
    let results = select_results(&q, &doc);
    println!("query returns {} binding(s)", results.len());

    // Static analysis: satisfiability against the schema (Table 2's
    // PTIME cell — join-free query, ordered schema).
    let sat = satisfiable(&q, &schema).expect("class is supported");
    println!(
        "satisfiable w.r.t. the schema: {} (decided by {:?})",
        sat.satisfiable, sat.algorithm
    );

    // Type inference for the SELECT variable.
    let inferred = infer(&q, &schema).expect("inference runs");
    print!("inferred types for X:");
    for a in &inferred {
        if let ssd::core::infer::InferredValue::Type(t) = a.entries[0].1 {
            print!(" {}", schema.name(t));
        }
    }
    println!();
}
